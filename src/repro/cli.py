"""Command-line interface.

Usage::

    python -m repro parallelize FILE.c [--method extended] [--trace] [--plan]
                                [--execute [--size N] [--workers W]]
    python -m repro analyze FILE.c [--vars a,b,c]
    python -m repro explain LOOP (FILE.c | --kernel NAME) [--method extended]
    python -m repro inspect LOOP (FILE.c | --kernel NAME) [--size N] [--seed S]
    python -m repro batch [FILES...] [--jobs N] [--cache-dir DIR] [--json PATH]
                          [--validate] [--tier hybrid] [--timeout S]
                          [--max-failures N] [--faults PLAN]
    python -m repro bench [--json PATH] [--size N] [--check]
    python -m repro bench --analysis [--json PATH] [--check]
    python -m repro figure1
    python -m repro figure10 [--measured]

``parallelize`` prints the OpenMP-annotated C (the paper's artifact);
``analyze`` prints the Section-3.5-style trace; ``explain`` prints the
provenance chain behind one loop's verdict (which statements established
each index-array property, which rule derived it, how the dependence
test used it — e.g. ``repro explain L2 kernel.c`` or ``repro explain L2
--kernel inv_perm_scatter``); ``inspect`` lowers one unknown-verdict
loop to a runtime inspector plan and evaluates it on synthesized (or
corpus) inputs, printing the predicate-level outcome (exit 0: dispatches
parallel, 1: stays serial, 2: error); ``batch`` runs the cached,
parallel batch engine over the built-in corpus and/or user C files (see
:mod:`repro.service`) with optional dynamic-oracle validation of the
PARALLEL verdicts (``--tier hybrid`` validates the runtime-inspected
dispatch tier too); ``bench`` measures the runtime engines (interp vs
compiled, see :mod:`repro.runtime.bench`) and writes
``BENCH_runtime.json``, or with ``--analysis`` measures the static
analyzer's cold corpus sweep (see :mod:`repro.analysis.bench`) and
writes ``BENCH_analysis.json``; the ``figure*`` commands regenerate the
paper's evaluation outputs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _read(path: str) -> str:
    return Path(path).read_text()


def cmd_parallelize(args: argparse.Namespace) -> int:
    from repro.parallelizer import parallelize

    out = parallelize(_read(args.file), method=args.method, function=args.function)
    if args.plan:
        print(out.plan.describe())
        print()
    print(out.annotated_c)
    if args.trace:
        from repro.analysis import render_trace

        print()
        print(render_trace(out.analysis))
    if args.execute:
        return _execute_plans(args)
    return 0


def _synth_inputs(func, size: int, seed: int = 0) -> dict:
    """Synthesize interpreter-ready inputs for an arbitrary mini-C
    function: index-typed (int) arrays draw from ``[0, size)`` so
    subscripted subscripts stay in bounds, float arrays are random, and
    every int scalar parameter is bound to ``size``."""
    import numpy as np

    from repro.ir.symtab import ElemType

    rng = np.random.default_rng(seed)
    env: dict = {}
    for info in func.symtab.arrays():
        shape = tuple(size if d is None else d for d in info.dims)
        if info.elem_type is ElemType.INT:
            env[info.name] = rng.integers(0, size, size=shape).astype(np.int64)
        else:
            env[info.name] = rng.uniform(-1.0, 1.0, size=shape)
    for info in func.symtab.scalars():
        if not info.is_param:
            continue
        env[info.name] = size if info.elem_type is ElemType.INT else 0.5
    return env


def _execute_plans(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.ir import build_function
    from repro.runtime import compile_parallel, execute, schedules_for

    func = build_function(_read(args.file), args.function)
    env = _synth_inputs(func, args.size)
    print()
    print(f"-- execute (size={args.size}, workers={args.workers or 'auto'}) --")
    scheds = schedules_for(func)
    if scheds:
        for sched in scheds.values():
            print("schedule:", sched.describe())
    else:
        print("schedule: none (no PARALLEL loop verdicts; serial path)")
    ref = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}
    t0 = time.perf_counter()
    execute(func, ref, engine="compiled")
    t_ser = time.perf_counter() - t0
    pf = compile_parallel(func)
    t0 = time.perf_counter()
    pf.run(env, workers=args.workers)
    t_par = time.perf_counter() - t0
    agree = all(
        np.array_equal(env[k], ref[k])
        if isinstance(ref[k], np.ndarray)
        else env[k] == ref[k]
        for k in ref
    )
    c = pf.last_counters
    print(
        f"compiled {t_ser * 1e3:8.2f} ms | parallel {t_par * 1e3:8.2f} ms | "
        f"speedup {t_ser / max(t_par, 1e-9):.2f}x"
    )
    print(
        f"counters: {c['parallel_activations']} parallel activations, "
        f"{c['inproc_chunks']} in-proc chunks, {c['mp_chunks']} mp chunks, "
        f"{c['serial_fallbacks']} serial fallbacks"
    )
    if c["mp_chunks"]:
        from repro.runtime import fabric_stats

        fs = fabric_stats()
        cost = fs["dispatch_cost_us"]
        print(
            f"fabric: {fs['pool_spawns']} pool spawn(s), "
            f"{fs['dispatches']} dispatches ({fs['warm_dispatches']} warm), "
            f"arena {fs['arena']['created']} segment(s) created / "
            f"{fs['arena']['recycled']} recycled"
            + (f", warm dispatch ~{cost:.0f} us" if cost else "")
        )
    print("engines agree:", "yes" if agree else "NO")
    return 0 if agree else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_function, render_trace
    from repro.ir import build_function

    func = build_function(_read(args.file), args.function)
    result = analyze_function(func)
    variables = args.vars.split(",") if args.vars else None
    print(render_trace(result, variables))
    print()
    print("facts at end of function:")
    print(result.final_env.describe())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.explain import explain_source

    if args.kernel is not None:
        from repro.corpus import all_kernels

        kernels = all_kernels()
        if args.kernel not in kernels:
            print(f"error: unknown corpus kernel {args.kernel!r}", file=sys.stderr)
            return 2
        k = kernels[args.kernel]
        source, assertions = k.source, k.assertion_env()
    elif args.file is not None:
        source, assertions = _read(args.file), None
    else:
        print("error: give a FILE or --kernel NAME", file=sys.stderr)
        return 2
    try:
        print(
            explain_source(
                source,
                args.loop,
                function=args.function,
                method=args.method,
                assertions=assertions,
            )
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.ir import build_function
    from repro.runtime import run_function
    from repro.runtime.parallel import compile_parallel

    if args.kernel is not None:
        from repro.corpus import all_kernels

        kernels = all_kernels()
        if args.kernel not in kernels:
            print(f"error: unknown corpus kernel {args.kernel!r}", file=sys.stderr)
            return 2
        k = kernels[args.kernel]
        source, assertions = k.source, k.assertion_env()
        make_inputs = k.make_inputs
    elif args.file is not None:
        source, assertions, make_inputs = _read(args.file), None, None
    else:
        print("error: give a FILE or --kernel NAME", file=sys.stderr)
        return 2
    func = build_function(source, args.function)
    if not any(lp.label == args.loop for lp in func.loops()):
        labels = ", ".join(lp.label for lp in func.loops())
        print(f"error: no loop {args.loop!r} (loops: {labels})", file=sys.stderr)
        return 2
    pf = compile_parallel(func, assertions, tier="hybrid")
    if args.loop in pf.scheduled and args.loop not in pf.inspectors:
        print(f"{args.loop}: statically PARALLEL — no runtime inspection needed")
        print("schedule:", pf.schedules[args.loop].describe())
        return 0
    if args.loop not in pf.inspectors:
        sched = pf.schedules.get(args.loop)
        if sched is not None and not sched.ok:
            print(f"{args.loop}: serial — schedule failed validation")
            for p in sched.problems:
                print(f"  - {p}")
        else:
            from repro.parallelizer.planner import plan_function

            plan = plan_function(func, method="extended", initial_env=assertions)
            lp = plan.loops.get(args.loop)
            reason = lp.reason if lp is not None else "no plan derived"
            print(f"{args.loop}: serial — not an inspector candidate ({reason})")
        return 1
    plan = pf.inspectors[args.loop]
    print("inspector plan:", plan.describe())
    if make_inputs is not None:
        env = make_inputs(args.seed)
    else:
        env = _synth_inputs(func, args.size, args.seed)
    ref = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}
    run_function(func, ref)
    pf.run(env, workers=args.workers, inspect_min_trips=1)
    res = pf.last_inspections.get(args.loop)
    if res is None:
        print(f"{args.loop}: loop did not activate on these inputs (0 trips?)")
        return 1
    print(res.describe())
    agree = all(
        np.array_equal(env[k], ref[k])
        if isinstance(ref[k], np.ndarray)
        else env[k] == ref[k]
        for k in ref
    )
    print("engines agree:", "yes" if agree else "NO")
    if not agree:
        return 2
    return 0 if res.parallel else 1


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import (
        BatchEngine,
        ResultCache,
        corpus_requests,
        requests_from_source,
    )

    if args.engine and not args.validate:
        print("error: --engine only applies to --validate", file=sys.stderr)
        return 2
    if args.tier == "hybrid" and not args.validate:
        print("error: --tier hybrid only applies to --validate", file=sys.stderr)
        return 2
    if args.tier == "hybrid" and args.engine != "parallel":
        print(
            "error: --tier hybrid needs --engine parallel (the hybrid tier "
            "is a parallel-engine dispatch mode)",
            file=sys.stderr,
        )
        return 2
    requests = []
    if args.corpus or not args.files:
        requests += corpus_requests(method=args.method)
    # labels must be unique batch-wide: two files sharing a stem (or a
    # stem colliding with a corpus kernel) get numbered suffixes
    seen = {r.name for r in requests}
    for path in args.files:
        label = stem = Path(path).stem
        k = 2
        while label in seen:
            label = f"{stem}-{k}"
            k += 1
        file_requests = requests_from_source(_read(path), label=label, method=args.method)
        seen.update(r.name for r in file_requests)
        seen.add(label)
        requests += file_requests
    cache = ResultCache(cache_dir=args.cache_dir)
    engine = BatchEngine(
        method=args.method,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        max_failures=args.max_failures,
    )
    prev_plan = None
    if args.faults:
        from repro.service import faults

        try:
            prev_plan = faults.install(args.faults)
        except ValueError as exc:
            print(f"error: --faults: {exc}", file=sys.stderr)
            return 2
    try:
        report = engine.run(requests)
        status = 1 if any(not v.ok for v in report.verdicts) else 0
        if args.validate:
            from repro.service import validate_parallel_verdicts

            problems = validate_parallel_verdicts(
                report, engine=args.engine, tier=args.tier
            )
            if problems:
                for name, msgs in sorted(problems.items()):
                    for msg in msgs:
                        print(f"SOUNDNESS VIOLATION [{name}]: {msg}")
                status = 1
            elif not args.quiet:
                checked = sum(
                    1 for v in report.verdicts if v.ok and v.parallel_loops
                )
                downgraded = len(report.health.get("oracle_downgrades", ()))
                note = f" ({downgraded} downgraded to unknown)" if downgraded else ""
                print(
                    "oracle validation: "
                    f"{checked} parallel verdicts spot-checked, all hold{note}"
                )
    finally:
        if args.faults:
            from repro.service import faults

            faults.install(prev_plan)
    if not args.quiet:
        print(report.render())
    if args.json == "-":
        print(report.to_json())
    elif args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        if not args.quiet:
            print(f"wrote {args.json}")
    return status


def cmd_bench(args: argparse.Namespace) -> int:
    if args.analysis:
        return _cmd_bench_analysis(args)
    from repro.runtime.bench import (
        check_regression,
        render,
        run_runtime_bench,
        to_json,
    )

    try:
        doc = run_runtime_bench(
            size=args.size,
            repeats=args.repeats,
            fuzz_seeds=args.fuzz_seeds,
            kernels=args.kernels.split(",") if args.kernels else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(render(doc))
    if args.json == "-":
        print(to_json(doc))
    elif args.json:
        Path(args.json).write_text(to_json(doc) + "\n")
        if not args.quiet:
            print(f"wrote {args.json}")
    if args.check:
        problems = check_regression(doc, min_speedup=args.min_speedup)
        if problems:
            for p in problems:
                print(f"PERF REGRESSION: {p}")
            return 1
        if not args.quiet:
            print(f"perf check passed (min speedup {args.min_speedup}x)")
    return 0


def _cmd_bench_analysis(args: argparse.Namespace) -> int:
    from repro.analysis.bench import (
        check_regression,
        render,
        run_analysis_bench,
        to_json,
    )

    doc = run_analysis_bench(repeats=args.repeats)
    if not args.quiet:
        print(render(doc))
    if args.json == "-":
        print(to_json(doc))
    elif args.json:
        Path(args.json).write_text(to_json(doc) + "\n")
        if not args.quiet:
            print(f"wrote {args.json}")
    if args.check:
        problems = check_regression(doc, max_sweep_seconds=args.max_sweep_seconds)
        if problems:
            for p in problems:
                print(f"PERF REGRESSION: {p}")
            return 1
        if not args.quiet:
            print(
                f"perf check passed (corpus sweep budget {args.max_sweep_seconds}s)"
            )
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    from repro.study import run_figure1

    print(run_figure1().render())
    return 0


def cmd_figure10(args: argparse.Namespace) -> int:
    from repro.evaluation import run_figure10, shape_checks

    result = run_figure10()
    print(result.render())
    problems = shape_checks(result)
    if problems:
        print("shape violations:", "; ".join(problems))
        return 1
    print("all paper shape checks hold")
    if args.measured:
        import os

        from repro.evaluation import measure_figure10, render_measured

        points = measure_figure10()
        print()
        print(render_measured(points))
        if (os.cpu_count() or 1) < 2:
            print("note: single-cpu host — measured speedups > 1x are not expected")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile-time parallelization of subscripted subscript patterns",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parallelize", help="emit OpenMP-annotated C")
    p.add_argument("file")
    p.add_argument("--method", default="extended", choices=["gcd", "banerjee", "range", "extended"])
    p.add_argument("--function", default=None, help="function name (default: the only one)")
    p.add_argument("--trace", action="store_true", help="also print the analysis trace")
    p.add_argument("--plan", action="store_true", help="also print the loop plan")
    p.add_argument(
        "--execute",
        action="store_true",
        help="also run the kernel on synthesized inputs: compiled vs the "
        "parallel engine, printing schedules, timings, and agreement",
    )
    p.add_argument(
        "--size",
        type=int,
        default=4096,
        help="--execute problem size (default 4096)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="--execute worker count (default: $REPRO_WORKERS or cpu count)",
    )
    p.set_defaults(fn=cmd_parallelize)

    a = sub.add_parser("analyze", help="print the Section 3.5-style analysis trace")
    a.add_argument("file")
    a.add_argument("--function", default=None)
    a.add_argument("--vars", default=None, help="comma-separated variable filter")
    a.set_defaults(fn=cmd_analyze)

    e = sub.add_parser(
        "explain", help="print the provenance chain behind one loop's verdict"
    )
    e.add_argument("loop", help="loop label (e.g. L2)")
    e.add_argument("file", nargs="?", default=None, help="mini-C source file")
    e.add_argument("--kernel", default=None, help="explain a built-in corpus kernel instead of a file")
    e.add_argument("--function", default=None, help="function name (default: the only one)")
    e.add_argument("--method", default="extended", choices=["gcd", "banerjee", "range", "extended"])
    e.set_defaults(fn=cmd_explain)

    i = sub.add_parser(
        "inspect",
        help="lower one unknown-verdict loop to a runtime inspector and evaluate it",
    )
    i.add_argument("loop", help="loop label (e.g. L2)")
    i.add_argument("file", nargs="?", default=None, help="mini-C source file")
    i.add_argument("--kernel", default=None, help="inspect a built-in corpus kernel instead of a file")
    i.add_argument("--function", default=None, help="function name (default: the only one)")
    i.add_argument("--size", type=int, default=4096, help="synthesized problem size (default 4096)")
    i.add_argument("--seed", type=int, default=0, help="input seed (default 0)")
    i.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the dispatch (default: $REPRO_WORKERS or cpu count)",
    )
    i.set_defaults(fn=cmd_inspect)

    b = sub.add_parser("batch", help="batch-analyze a corpus with caching + workers")
    b.add_argument("files", nargs="*", help="mini-C source files (default: built-in corpus)")
    b.add_argument("--corpus", action="store_true", help="include the built-in corpus even when files are given")
    b.add_argument("--method", default="extended", choices=["gcd", "banerjee", "range", "extended"])
    b.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    b.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    b.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-kernel wall-clock budget (default: unlimited)",
    )
    b.add_argument(
        "--max-failures",
        type=int,
        default=2,
        help="infrastructure failures before a kernel is quarantined (default 2)",
    )
    b.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject faults for this run: 'site[:glob[:times]]; ...' "
        "(see repro.service.faults.SITES; also via $REPRO_FAULTS)",
    )
    b.add_argument("--json", default=None, metavar="PATH", help="write the JSON report to PATH ('-' for stdout)")
    b.add_argument("--quiet", action="store_true", help="suppress the summary table")
    b.add_argument(
        "--validate",
        action="store_true",
        help="spot-check PARALLEL verdicts against the dynamic oracle (corpus kernels)",
    )
    b.add_argument(
        "--engine",
        default=None,
        choices=["interp", "compiled", "parallel"],
        help="runtime engine for --validate (default: $REPRO_ENGINE or "
        "compiled; 'parallel' additionally executes each validated kernel "
        "on the parallel engine against the interpreter)",
    )
    b.add_argument(
        "--tier",
        default="static",
        choices=["static", "hybrid"],
        help="parallel-engine dispatch tier for --validate --engine parallel "
        "(hybrid also runs unknown-verdict loops through the runtime "
        "inspector; default static)",
    )
    b.set_defaults(fn=cmd_batch)

    r = sub.add_parser(
        "bench",
        help="benchmark the runtime engines (default) or the analyzer (--analysis)",
    )
    r.add_argument(
        "--analysis",
        action="store_true",
        help="benchmark the static analyzer (cold corpus sweep) instead of the runtime engines",
    )
    r.add_argument("--json", default=None, metavar="PATH", help="write the bench JSON to PATH ('-' for stdout)")
    r.add_argument("--size", type=int, default=20000, help="kernel problem size (default 20000)")
    r.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of (default 3; --analysis uses median too)")
    r.add_argument(
        "--max-sweep-seconds",
        type=float,
        default=1.0,
        help="--analysis --check budget for the cold corpus sweep (default 1.0)",
    )
    r.add_argument("--fuzz-seeds", type=int, default=15, help="random kernels in the fuzz sweep (default 15)")
    r.add_argument("--kernels", default=None, help="comma-separated kernel subset (default: all)")
    r.add_argument("--check", action="store_true", help="exit 1 unless compiled beats interp on every kernel")
    r.add_argument("--min-speedup", type=float, default=1.0, help="regression threshold for --check (default 1.0)")
    r.add_argument("--quiet", action="store_true", help="suppress the summary table")
    r.set_defaults(fn=cmd_bench)

    sub.add_parser("figure1", help="regenerate the Figure 1 study table").set_defaults(
        fn=cmd_figure1
    )
    f10 = sub.add_parser("figure10", help="regenerate the Figure 10 speedup table")
    f10.add_argument(
        "--measured",
        action="store_true",
        help="also measure the CG product loop on the parallel engine "
        "(workers 2 and 4) against the compiled serial engine",
    )
    f10.set_defaults(fn=cmd_figure10)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

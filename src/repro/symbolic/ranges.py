"""Symbolic value ranges ``[lo : hi]``.

The paper's representation (Section 3.2) describes variable values as *may*
ranges ``x : [lb : ub]`` and array sections as a subscript (*must*) range
plus a value range.  This module implements the value-range arithmetic; the
subscript/must-range pairing lives in :mod:`repro.analysis`.

A range endpoint is any :class:`~repro.symbolic.expr.Expr`; ``NEG_INF`` /
``POS_INF`` mark unbounded sides and the fully unknown range corresponds to
the paper's ⊥ for scalars.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping

from repro.errors import SymbolicError
from repro.symbolic.expr import (
    BOTTOM,
    Const,
    Expr,
    ExprLike,
    NEG_INF,
    POS_INF,
    SubstFn,
    _coerce,
    register_memo_table as _register_memo_table,
    add,
    const,
    mul,
    neg,
    smax,
    smin,
    sub,
)


@dataclass(frozen=True, slots=True)
class SymRange:
    """A *may* range of integer values with symbolic endpoints."""

    lo: Expr
    hi: Expr

    # Deeply immutable (endpoints are interned exprs) — copying is identity.
    def __copy__(self) -> "SymRange":
        return self

    def __deepcopy__(self, memo: dict) -> "SymRange":
        return self

    # -- constructors -------------------------------------------------------
    @staticmethod
    def make(lo: ExprLike, hi: ExprLike) -> "SymRange":
        elo, ehi = _coerce(lo), _coerce(hi)
        if elo.is_bottom:
            elo = NEG_INF
        if ehi.is_bottom:
            ehi = POS_INF
        return SymRange(elo, ehi)

    @staticmethod
    def point(e: ExprLike) -> "SymRange":
        ee = _coerce(e)
        if ee.is_bottom:
            return UNKNOWN_RANGE
        return SymRange(ee, ee)

    @staticmethod
    def unknown() -> "SymRange":
        return UNKNOWN_RANGE

    # -- queries -------------------------------------------------------------
    @property
    def is_unknown(self) -> bool:
        return self.lo is NEG_INF and self.hi is POS_INF

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not self.lo.is_infinite

    @property
    def has_finite_lo(self) -> bool:
        return not self.lo.is_infinite and not self.lo.is_bottom

    @property
    def has_finite_hi(self) -> bool:
        return not self.hi.is_infinite and not self.hi.is_bottom

    def const_bounds(self) -> tuple[Fraction | None, Fraction | None]:
        """Constant endpoints, where available."""
        lo = self.lo.const_value() if isinstance(self.lo, Const) else None
        hi = self.hi.const_value() if isinstance(self.hi, Const) else None
        return lo, hi

    def contains_value(self, value: int, env: Mapping) -> bool:
        """Concrete membership test (used by soundness tests)."""
        from repro.symbolic.expr import evaluate

        if self.has_finite_lo and evaluate(self.lo, env) > value:
            return False
        if self.has_finite_hi and evaluate(self.hi, env) < value:
            return False
        return True

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: "SymRange | ExprLike") -> "SymRange":
        o = _as_range(other)
        return SymRange(_ep_add(self.lo, o.lo), _ep_add(self.hi, o.hi))

    def __sub__(self, other: "SymRange | ExprLike") -> "SymRange":
        o = _as_range(other)
        return SymRange(_ep_sub(self.lo, o.hi), _ep_sub(self.hi, o.lo))

    def __neg__(self) -> "SymRange":
        return SymRange(_ep_neg(self.hi), _ep_neg(self.lo))

    def scale_const(self, k: ExprLike) -> "SymRange":
        """Multiply by a *constant* expression of known sign."""
        ek = _coerce(k)
        if not isinstance(ek, Const):
            raise SymbolicError("scale_const requires a literal constant")
        if ek.value == 0:
            return SymRange.point(0)
        if ek.value > 0:
            return SymRange(_ep_mul(self.lo, ek), _ep_mul(self.hi, ek))
        return SymRange(_ep_mul(self.hi, ek), _ep_mul(self.lo, ek))

    def scale_nonneg(self, n: Expr) -> "SymRange":
        """Multiply by a symbolic factor known (by the caller) to be ≥ 0."""
        if n.is_bottom:
            return UNKNOWN_RANGE
        return SymRange(_ep_mul(self.lo, n), _ep_mul(self.hi, n))

    def mul_range(self, other: "SymRange") -> "SymRange":
        """General range product — exact only for constant endpoints."""
        a = self.const_bounds()
        b = other.const_bounds()
        if None in a or None in b:
            if other.is_point:
                p = other.lo
                if isinstance(p, Const):
                    return self.scale_const(p)
            if self.is_point:
                p = self.lo
                if isinstance(p, Const):
                    return other.scale_const(p)
            return UNKNOWN_RANGE
        prods = [x * y for x in a for y in b]  # type: ignore[operator]
        return SymRange(const(min(prods)), const(max(prods)))

    # -- lattice ----------------------------------------------------------------
    def join(self, other: "SymRange") -> "SymRange":
        """Union hull: the smallest range containing both."""
        return SymRange(_ep_min(self.lo, other.lo), _ep_max(self.hi, other.hi))

    def meet(self, other: "SymRange") -> "SymRange":
        """Intersection (may be empty — callers check with a prover)."""
        return SymRange(_ep_max(self.lo, other.lo), _ep_min(self.hi, other.hi))

    def widen(self, newer: "SymRange") -> "SymRange":
        """Standard interval widening: drop unstable bounds to ±∞."""
        lo = self.lo if newer.lo == self.lo else NEG_INF
        hi = self.hi if newer.hi == self.hi else POS_INF
        return SymRange(lo, hi)

    # -- structure ----------------------------------------------------------------
    def subst(self, fn: SubstFn) -> "SymRange":
        return SymRange(self.lo.subst(fn), self.hi.subst(fn))

    def shift(self, delta: ExprLike) -> "SymRange":
        return SymRange(_ep_add(self.lo, _coerce(delta)), _ep_add(self.hi, _coerce(delta)))

    def __str__(self) -> str:
        if self.is_point:
            return f"[{self.lo}]"
        return f"[{self.lo} : {self.hi}]"


UNKNOWN_RANGE = SymRange(NEG_INF, POS_INF)


def symrange(lo: ExprLike, hi: ExprLike) -> SymRange:
    """Public constructor; normalizes ⊥ endpoints to ±∞."""
    return SymRange.make(lo, hi)


# --------------------------------------------------------------------------
# index vectors: products of ranges
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MultiSection:
    """A product of per-dimension :class:`SymRange`s — the section of a
    possibly multi-dimensional array.

    ``dims == ()`` is the lattice top ⊤ ("unknown shape"): joining
    sections of different ranks loses even the rank.  A scalar array
    section is rank 1; the 1-D algebra is exactly the ``rank == 1``
    special case of every operation here.
    """

    dims: tuple[SymRange, ...]

    # Deeply immutable — copying is identity.
    def __copy__(self) -> "MultiSection":
        return self

    def __deepcopy__(self, memo: dict) -> "MultiSection":
        return self

    # -- constructors -------------------------------------------------------
    @staticmethod
    def of(*dims: "SymRange | ExprLike") -> "MultiSection":
        return MultiSection(tuple(_as_range(d) for d in dims))

    @staticmethod
    def unknown(rank: int) -> "MultiSection":
        return MultiSection((UNKNOWN_RANGE,) * rank)

    # -- queries ------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_top(self) -> bool:
        return not self.dims

    @property
    def lead(self) -> SymRange:
        """The leading dimension's range (rank ≥ 1)."""
        return self.dims[0]

    def dim(self, d: int) -> SymRange:
        return self.dims[d]

    @property
    def is_point(self) -> bool:
        """A single array element: every dimension is a point."""
        return bool(self.dims) and all(r.is_point for r in self.dims)

    @property
    def is_unknown(self) -> bool:
        """Nothing known beyond (at most) the rank."""
        return not self.dims or all(r.is_unknown for r in self.dims)

    def contains_values(self, values, env: Mapping) -> bool:  # noqa: ANN001
        """Concrete membership of an index tuple (soundness tests)."""
        if self.is_top or len(values) != self.rank:
            return True  # unknown shape constrains nothing
        return all(r.contains_value(v, env) for r, v in zip(self.dims, values))

    # -- lattice ------------------------------------------------------------
    def join(self, other: "MultiSection") -> "MultiSection":
        """Per-dimension union hull; rank mismatch loses the shape (⊤)."""
        if self.is_top or other.is_top or self.rank != other.rank:
            return TOP_SECTION
        return MultiSection(tuple(a.join(b) for a, b in zip(self.dims, other.dims)))

    def meet(self, other: "MultiSection") -> "MultiSection":
        """Per-dimension intersection; ⊤ is the meet identity."""
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.rank != other.rank:
            return TOP_SECTION  # incomparable shapes: nothing sound to keep
        return MultiSection(tuple(a.meet(b) for a, b in zip(self.dims, other.dims)))

    def widen(self, newer: "MultiSection") -> "MultiSection":
        """Per-dimension interval widening; unstable rank widens to ⊤."""
        if self.is_top or newer.is_top or self.rank != newer.rank:
            return TOP_SECTION
        return MultiSection(tuple(a.widen(b) for a, b in zip(self.dims, newer.dims)))

    # -- structure ----------------------------------------------------------
    def subst(self, fn: SubstFn) -> "MultiSection":
        return MultiSection(tuple(r.subst(fn) for r in self.dims))

    def __str__(self) -> str:
        if self.is_top:
            return "[?]"
        return " × ".join(str(r) for r in self.dims)


TOP_SECTION = MultiSection(())


def multisection(*dims: "SymRange | ExprLike") -> MultiSection:
    """Public constructor mirroring :func:`symrange`."""
    return MultiSection.of(*dims)


def _as_range(x: "SymRange | ExprLike") -> SymRange:
    if isinstance(x, SymRange):
        return x
    return SymRange.point(_coerce(x))


#: Bounded memo for :func:`range_subst` — both endpoints of a range are
#: usually substituted under the same (tiny) mapping, and the analysis
#: re-resolves identical post-states once per enclosing loop level.
#: Expressions and :class:`SymRange` values are immutable and hashable,
#: so keying on ``(e, side, mapping-items)`` is exact.  Bookkeeping
#: (bounded size, hit/miss stats) is shared with the constructor memos
#: in :mod:`repro.symbolic.expr`; ``expr.clear_memo_tables`` clears this
#: table too (via the registry in :mod:`repro.symbolic.expr`).
_subst_memo: dict[tuple, Expr] = {}

_register_memo_table("ranges.subst", _subst_memo.__len__, _subst_memo.clear)


def range_subst(e: Expr, mapping: Mapping, side: str) -> Expr:
    """Substitute ranges for atoms inside ``e``, picking the endpoint that
    bounds ``e`` from the requested ``side`` (``"lo"`` or ``"hi"``).

    ``mapping`` maps atoms to :class:`SymRange`.  The result is a sound
    bound *provided every mapped atom appears linearly* (which holds for
    the canonical sums the analysis produces); atoms appearing inside
    products with other mapped atoms make the result ⊥-conservative
    (±∞) unless their range is a point.
    """
    from repro.symbolic.expr import _memo_get, _memo_put

    if isinstance(e, Const) or e.is_infinite or e.is_bottom:
        return e
    key = (e, side, frozenset(mapping.items()))
    cached = _memo_get(_subst_memo, key)
    if cached is not None:
        return cached
    return _memo_put(_subst_memo, key, _range_subst_uncached(e, mapping, side))


def _range_subst_uncached(e: Expr, mapping: Mapping, side: str) -> Expr:
    from repro.symbolic.expr import Atom, Sum, _as_terms

    def pick(atom: Atom, want_hi: bool) -> Expr:
        r = mapping.get(atom)
        if r is None:
            # rewrite inside the atom (e.g. array index expressions)
            return atom.subst(lambda a: None if a not in mapping else _point_of(mapping[a]))
        return r.hi if want_hi else r.lo

    def _point_of(r: SymRange) -> Expr | None:
        return r.lo if r.is_point else BOTTOM

    want_hi_top = side == "hi"
    parts: list[Expr] = []
    for coeff, mono in _as_terms(e):
        if not mono:
            parts.append(const(coeff))
            continue
        want_hi = want_hi_top if coeff > 0 else not want_hi_top
        mapped = [a for a in mono if a in mapping and not mapping[a].is_point]
        if mapped and len(mono) > 1:
            # a non-point range multiplied by another factor of unknown
            # sign cannot be bounded soundly at this level
            return POS_INF if want_hi_top else NEG_INF
        factors: list[Expr] = [const(coeff)]
        for atom in mono:
            b = pick(atom, want_hi)
            if b.is_infinite or b.is_bottom:
                return POS_INF if want_hi_top else NEG_INF
            factors.append(b)
        parts.append(mul(*factors))
    try:
        return add(*parts)
    except SymbolicError:
        return POS_INF if want_hi_top else NEG_INF


def range_subst_range(r: SymRange, mapping: Mapping) -> SymRange:
    """Apply :func:`range_subst` to both endpoints of a range."""
    lo = r.lo if r.lo.is_infinite else range_subst(r.lo, mapping, "lo")
    hi = r.hi if r.hi.is_infinite else range_subst(r.hi, mapping, "hi")
    return SymRange(lo, hi)


# -- endpoint arithmetic with infinities ------------------------------------


def _ep_add(a: Expr, b: Expr) -> Expr:
    if a.is_infinite and b.is_infinite:
        if a is b:
            return a
        raise SymbolicError("adding opposite infinite endpoints")
    if a.is_infinite:
        return a
    if b.is_infinite:
        return b
    return add(a, b)


def _ep_sub(a: Expr, b: Expr) -> Expr:
    if b.is_infinite:
        return NEG_INF if b is POS_INF else POS_INF
    if a.is_infinite:
        return a
    return sub(a, b)


def _ep_neg(a: Expr) -> Expr:
    if a is POS_INF:
        return NEG_INF
    if a is NEG_INF:
        return POS_INF
    return neg(a)


def _ep_mul(a: Expr, k: Expr) -> Expr:
    if a.is_infinite:
        if isinstance(k, Const):
            if k.value == 0:
                return const(0)
            return a if k.value > 0 else (NEG_INF if a is POS_INF else POS_INF)
        # sign of k unknown to this layer; caller promised nonneg
        return a
    return mul(a, k)


def _ep_min(a: Expr, b: Expr) -> Expr:
    if a is NEG_INF or b is NEG_INF:
        return NEG_INF
    if a is POS_INF:
        return b
    if b is POS_INF:
        return a
    return smin(a, b)


def _ep_max(a: Expr, b: Expr) -> Expr:
    if a is POS_INF or b is POS_INF:
        return POS_INF
    if a is NEG_INF:
        return b
    if b is NEG_INF:
        return a
    return smax(a, b)

"""Prover-level fact environment.

The numeric prover (:mod:`repro.symbolic.compare`) needs three kinds of
facts:

* value ranges of named symbols (loop bounds, parameters, λ/Λ symbols);
* per-array *monotone direction* — this powers the paper's key deduction
  ``Monotonic_inc(rowptr) ∧ i ≤ j ⟹ rowptr[i] ≤ rowptr[j]``;
* per-array element value ranges (optionally restricted to an index
  section) and the ``Identity`` shortcut ``a[i] = i``.

This is deliberately a *thin* projection of the richer property lattice in
:mod:`repro.analysis.properties`; the analysis layer lowers its lattice
into a :class:`FactEnv` before invoking the prover so that the symbolic
layer has no dependency on the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable

from repro.symbolic.expr import Expr, Sym
from repro.symbolic.ranges import SymRange


class MonoDir(Enum):
    """Monotone direction of an array's values over its index."""

    INC = "inc"
    DEC = "dec"
    STRICT_INC = "strict_inc"
    STRICT_DEC = "strict_dec"

    @property
    def increasing(self) -> bool:
        return self in (MonoDir.INC, MonoDir.STRICT_INC)

    @property
    def strict(self) -> bool:
        return self in (MonoDir.STRICT_INC, MonoDir.STRICT_DEC)


@dataclass(frozen=True, slots=True)
class CompositeMonoFact:
    """Monotonicity of a *combination* of arrays (the paper's "monotonic
    difference between arrays", Section 2 item 2c).

    The sequence ``e(j) = Σ coeff_t · array_t[j + offset_t]`` is monotone
    in ``j``; e.g. CG's ``rowstr[j] - nzloc[j-1]`` is
    ``terms = ((1, "rowstr", 0), (-1, "nzloc", -1))``.
    """

    terms: tuple[tuple[int, str, int], ...]
    direction: "MonoDir" = None  # type: ignore[assignment]

    def instance(self, j):  # noqa: ANN001 — returns Expr
        from repro.symbolic.expr import add, array_term, mul

        return add(*[mul(c, array_term(a, add(j, o))) for c, a, o in self.terms])


@dataclass(frozen=True, slots=True)
class ArrayFact:
    """Facts about one array, as consumed by the prover.

    ``section`` restricts where ``mono`` / ``value_range`` are known to
    hold (``None`` = the whole array as far as the program accesses it).
    """

    mono: MonoDir | None = None
    value_range: SymRange | None = None
    identity: bool = False
    section: SymRange | None = None

    def merged(self, other: "ArrayFact") -> "ArrayFact":
        """Combine two fact records (keep the more informative fields)."""
        return ArrayFact(
            mono=self.mono or other.mono,
            value_range=self.value_range or other.value_range,
            identity=self.identity or other.identity,
            section=self.section or other.section,
        )


@dataclass(slots=True)
class FactEnv:
    """Mutable collection of prover facts.

    ``version`` increments on every mutation so provers can memoize
    safely against a specific environment state.
    """

    sym_ranges: dict[Sym, SymRange] = field(default_factory=dict)
    arrays: dict[str, ArrayFact] = field(default_factory=dict)
    composites: list[CompositeMonoFact] = field(default_factory=list)
    version: int = 0

    def add_composite(self, fact: CompositeMonoFact) -> None:
        self.composites.append(fact)
        self.version += 1

    # -- symbols -------------------------------------------------------------
    def set_sym_range(self, sym: Sym, rng: SymRange) -> None:
        self.sym_ranges[sym] = rng
        self.version += 1

    def sym_range(self, sym: Sym) -> SymRange | None:
        return self.sym_ranges.get(sym)

    def assume_nonneg(self, sym: Sym) -> None:
        """Shortcut: constrain ``sym`` ≥ 0."""
        from repro.symbolic.expr import POS_INF, ZERO

        existing = self.sym_ranges.get(sym)
        lo = ZERO
        hi = existing.hi if existing is not None else POS_INF
        self.set_sym_range(sym, SymRange(lo, hi))

    # -- arrays ------------------------------------------------------------------
    def set_array_fact(self, array: str, fact: ArrayFact) -> None:
        existing = self.arrays.get(array)
        self.arrays[array] = fact.merged(existing) if existing else fact
        self.version += 1

    def array_fact(self, array: str) -> ArrayFact | None:
        return self.arrays.get(array)

    def clear_array(self, array: str) -> None:
        if array in self.arrays:
            del self.arrays[array]
            self.version += 1

    # -- convenience constructors -----------------------------------------------
    def copy(self) -> "FactEnv":
        return FactEnv(
            dict(self.sym_ranges), dict(self.arrays), list(self.composites), self.version
        )

    @staticmethod
    def of(
        sym_ranges: Iterable[tuple[Sym, SymRange]] = (),
        arrays: Iterable[tuple[str, ArrayFact]] = (),
    ) -> "FactEnv":
        env = FactEnv()
        for s, r in sym_ranges:
            env.set_sym_range(s, r)
        for a, f in arrays:
            env.set_array_fact(a, f)
        return env

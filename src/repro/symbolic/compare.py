"""Ternary symbolic comparison ("the prover").

Dependence testing in the paper reduces to queries such as

    prove   rowptr[i] - 1  <  rowptr[i + δ]      for all δ ≥ 1

given the fact *Monotonic_inc(rowptr)*.  This module answers such queries
with a three-valued result (:class:`Tri`): ``TRUE`` and ``FALSE`` are
proofs, ``UNKNOWN`` means "cannot decide" (the sound default).

Two reasoning engines are combined:

1. **Interval bounding** — every atom is replaced by a range endpoint
   taken from the :class:`~repro.symbolic.facts.FactEnv` (symbol ranges,
   array element-value ranges, ``Identity``), the expression is
   re-canonicalized (which cancels symbolic terms), and the process
   iterates to a fixpoint or depth limit.
2. **Monotone-pair cancellation** — a difference containing
   ``+c*A[e2] - c*A[e1]`` with ``Monotonic_inc(A)`` and a provable
   ``e1 ≤ e2`` is ≥ 0 and can be dropped from the difference; for
   *strictly* monotone integer arrays the stronger bound
   ``A[e2] - A[e1] ≥ e2 - e1`` is used.

All results are *sound*: a ``TRUE``/``FALSE`` answer is a theorem under
the supplied facts; the property-based tests check this against random
concrete models.
"""

from __future__ import annotations

import enum
import itertools
import weakref
from typing import Iterable

from repro.symbolic.expr import (
    ArrayTerm,
    Atom,
    BOTTOM,
    Const,
    Expr,
    ExprLike,
    NEG_INF,
    Number,
    OpaqueOp,
    OpaqueTerm,
    POS_INF,
    Sum,
    Sym,
    ZERO,
    _coerce,
    add,
    const,
    mul,
    register_memo_table,
    sub,
    trunc_div,
)
from repro.symbolic.facts import ArrayFact, FactEnv, MonoDir
from repro.symbolic.ranges import SymRange


class Tri(enum.Enum):
    """Three-valued logic result."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # guard against accidental truthiness bugs
        raise TypeError("Tri is not a boolean; compare against Tri members")

    @property
    def is_true(self) -> bool:
        return self is Tri.TRUE

    @property
    def is_false(self) -> bool:
        return self is Tri.FALSE

    @property
    def is_unknown(self) -> bool:
        return self is Tri.UNKNOWN


def tri_not(t: Tri) -> Tri:
    if t is Tri.TRUE:
        return Tri.FALSE
    if t is Tri.FALSE:
        return Tri.TRUE
    return Tri.UNKNOWN


def tri_and(*ts: Tri) -> Tri:
    if any(t is Tri.FALSE for t in ts):
        return Tri.FALSE
    if all(t is Tri.TRUE for t in ts):
        return Tri.TRUE
    return Tri.UNKNOWN


def tri_or(*ts: Tri) -> Tri:
    if any(t is Tri.TRUE for t in ts):
        return Tri.TRUE
    if all(t is Tri.FALSE for t in ts):
        return Tri.FALSE
    return Tri.UNKNOWN


class _Side(enum.Enum):
    LOW = "low"
    HIGH = "high"

    def flip(self) -> "_Side":
        return _Side.HIGH if self is _Side.LOW else _Side.LOW


_MAX_DEPTH = 8
_MAX_PAIR_COMBOS = 16

#: Live prover instances, so the memo-table registry in
#: :mod:`repro.symbolic.expr` can count and clear their per-instance
#: memos too ("cold" benchmark runs previously missed these entirely).
_live_provers: "weakref.WeakSet[Prover]" = weakref.WeakSet()


def _prover_memo_entries() -> int:
    return sum(len(p._memo_nn) + len(p._memo_rank) for p in _live_provers)


def _prover_memo_clear() -> None:
    for p in _live_provers:
        p._memo_nn.clear()
        p._memo_rank.clear()


register_memo_table("compare.prover", _prover_memo_entries, _prover_memo_clear)


class Prover:
    """Comparison engine bound to one fact environment."""

    def __init__(self, facts: FactEnv | None = None, max_depth: int = _MAX_DEPTH):
        self.facts = facts if facts is not None else FactEnv()
        self.max_depth = max_depth
        # Per-instance memos, identity-keyed on interned expressions.
        # Validity is tied to ``facts.version`` (which only grows): on a
        # version change the tables are dropped wholesale instead of
        # carrying the version inside every key.
        self._memo_nn: dict[Expr, Tri] = {}
        self._memo_rank: dict[Atom, int] = {}
        self._memo_version = self.facts.version
        self._in_progress: set[Expr] = set()
        _live_provers.add(self)

    def _sync_memo(self) -> None:
        if self._memo_version != self.facts.version:
            self._memo_nn.clear()
            self._memo_rank.clear()
            self._memo_version = self.facts.version

    # -- public queries (integer semantics) ---------------------------------
    def nonneg(self, e: ExprLike) -> Tri:
        """Is ``e >= 0``?"""
        return self._nonneg(_coerce(e), self.max_depth)

    def le(self, a: ExprLike, b: ExprLike) -> Tri:
        """Is ``a <= b``?"""
        return self._nonneg(sub(b, a), self.max_depth)

    def lt(self, a: ExprLike, b: ExprLike) -> Tri:
        """Is ``a < b``?  (integers: ``a <= b - 1``)"""
        return self._nonneg(sub(sub(b, a), 1), self.max_depth)

    def ge(self, a: ExprLike, b: ExprLike) -> Tri:
        return self.le(b, a)

    def gt(self, a: ExprLike, b: ExprLike) -> Tri:
        return self.lt(b, a)

    def eq(self, a: ExprLike, b: ExprLike) -> Tri:
        d = sub(a, b)
        if isinstance(d, Const):
            return Tri.TRUE if d.value == 0 else Tri.FALSE
        return tri_and(self.nonneg(d), self.nonneg(sub(ZERO, d)))

    def ne(self, a: ExprLike, b: ExprLike) -> Tri:
        return tri_not(self.eq(a, b))

    def pos(self, e: ExprLike) -> Tri:
        """Is ``e >= 1``?"""
        return self._nonneg(sub(_coerce(e), 1), self.max_depth)

    def ranges_disjoint(self, a: SymRange, b: SymRange) -> Tri:
        """Are the *closed* integer ranges ``a`` and ``b`` disjoint?"""
        return tri_or(self.lt(a.hi, b.lo), self.lt(b.hi, a.lo))

    def range_nonempty(self, r: SymRange) -> Tri:
        return self.le(r.lo, r.hi)

    # -- core ---------------------------------------------------------------
    def _nonneg(self, e: Expr, depth: int) -> Tri:
        if e.is_bottom:
            return Tri.UNKNOWN
        if e is POS_INF:
            return Tri.TRUE
        if e is NEG_INF:
            return Tri.FALSE
        if isinstance(e, Const):
            return Tri.TRUE if e.value >= 0 else Tri.FALSE
        if depth <= 0:
            return Tri.UNKNOWN
        self._sync_memo()
        cached = self._memo_nn.get(e)
        if cached is not None:
            return cached
        if e in self._in_progress:
            return Tri.UNKNOWN
        self._in_progress.add(e)
        try:
            result = self._nonneg_uncached(e, depth)
        finally:
            self._in_progress.discard(e)
        self._memo_nn[e] = result
        return result

    def _nonneg_uncached(self, e: Expr, depth: int) -> Tri:
        # 1. interval bounding
        lo = self._bound(e, _Side.LOW, depth)
        if isinstance(lo, Const) and lo.value >= 0:
            return Tri.TRUE
        hi = self._bound(e, _Side.HIGH, depth)
        if isinstance(hi, Const) and hi.value < 0:
            return Tri.FALSE
        # 2. monotone-pair cancellation
        for reduced in self._mono_pair_reductions(e, depth):
            if self._nonneg(reduced, depth - 1) is Tri.TRUE:
                return Tri.TRUE
        # 3. composite ("monotonic difference") cancellation
        for reduced in self._composite_reductions(e, depth):
            if self._nonneg(reduced, depth - 1) is Tri.TRUE:
                return Tri.TRUE
        return Tri.UNKNOWN

    def _composite_reductions(self, e: Expr, depth: int) -> Iterable[Expr]:
        """Reductions using :class:`CompositeMonoFact`: if the sequence
        ``e(j) = Σ c_t · A_t[j + o_t]`` is monotone increasing and
        ``b <= a``, then ``expr - (e(a) - e(b))`` bounds ``expr`` from
        below, so proving it non-negative proves the original."""
        if not isinstance(e, Sum) or depth <= 1 or not self.facts.composites:
            return
        for fact in self.facts.composites:
            if fact.direction is None:
                continue
            c0, a0, o0 = fact.terms[0]
            pos_idx: list[Expr] = []
            neg_idx: list[Expr] = []
            for coeff, mono in e.terms:
                if len(mono) == 1 and isinstance(mono[0], ArrayTerm) and mono[0].array == a0:
                    j = sub(mono[0].index, o0)
                    if (coeff > 0) == (c0 > 0):
                        pos_idx.append(j)
                    else:
                        neg_idx.append(j)
            combos = 0
            for a in pos_idx:
                for b in neg_idx:
                    combos += 1
                    if combos > _MAX_PAIR_COMBOS:
                        return
                    # e(a) - e(b) >= 0 iff the order matches the direction
                    small, large = (b, a) if fact.direction.increasing else (a, b)
                    if self._nonneg(sub(large, small), depth - 1) is not Tri.TRUE:
                        continue
                    pattern = sub(fact.instance(a), fact.instance(b))
                    reduced = add(e, mul(-1, pattern))
                    if fact.direction.strict:
                        yield add(reduced, sub(large, small))
                    yield reduced

    # -- monotone pairs ------------------------------------------------------
    def _mono_pair_reductions(self, e: Expr, depth: int) -> Iterable[Expr]:
        """Yield expressions ``e'`` with ``e >= e'`` obtained by removing
        one provably-nonnegative monotone pair, so ``e' >= 0 ⟹ e >= 0``."""
        if not isinstance(e, Sum) or depth <= 1:
            return
        by_array: dict[str, list[tuple[Number, ArrayTerm]]] = {}
        for coeff, mono in e.terms:
            if len(mono) == 1 and isinstance(mono[0], ArrayTerm):
                at = mono[0]
                fact = self.facts.array_fact(at.array)
                if fact is not None and fact.mono is not None:
                    by_array.setdefault(at.array, []).append((coeff, at))
        combos = 0
        for array, entries in by_array.items():
            fact = self.facts.array_fact(array)
            assert fact is not None and fact.mono is not None
            positives = [(c, t) for c, t in entries if c > 0]
            negatives = [(c, t) for c, t in entries if c < 0]
            for (cp, tp), (cn, tn) in itertools.product(positives, negatives):
                combos += 1
                if combos > _MAX_PAIR_COMBOS:
                    return
                c = min(cp, -cn)
                # pair value: c * (A[tp.index] - A[tn.index])
                if fact.mono.increasing:
                    small, large = tn.index, tp.index
                else:
                    small, large = tp.index, tn.index
                if self._le_within(small, large, fact, depth - 1) is not Tri.TRUE:
                    continue
                # drop the pair: subtract c*A[tp.index] and add c*A[tn.index]
                reduced = add(e, mul(-c, tp), mul(c, tn))
                if fact.mono.strict:
                    # strictly monotone integer arrays grow at least by the
                    # index gap: A[large] - A[small] >= large - small
                    yield add(reduced, mul(c, sub(large, small)))
                yield reduced

    def _le_within(self, a: Expr, b: Expr, fact: ArrayFact, depth: int) -> Tri:
        """``a <= b`` and, when the fact is section-restricted, both
        indices lie inside the section."""
        r = self._nonneg(sub(b, a), depth)
        if r is not Tri.TRUE:
            return r
        if fact.section is not None:
            inside = tri_and(
                self._nonneg(sub(a, fact.section.lo), depth),
                self._nonneg(sub(fact.section.hi, b), depth),
            )
            if inside is not Tri.TRUE:
                return Tri.UNKNOWN
        return Tri.TRUE

    # -- interval bounding ------------------------------------------------------
    def _bound(self, e: Expr, side: _Side, depth: int) -> Expr:
        """A sound ``side`` bound of ``e`` (LOW: result <= e; HIGH: e <=
        result).  May return ±∞ or a still-symbolic expression.

        Elimination is *ranked*: atoms whose facts are defined in terms of
        other fact-bearing atoms (e.g. ``i2 ∈ [i1+1 : n]``) are replaced
        first, then the expression is re-canonicalized so correlated
        occurrences cancel before the base atoms are widened.  This is
        what makes ``rowptr[i2-1] - rowptr[i1] >= 0`` with
        ``i2 >= i1 + 1`` provable exactly.
        """
        for _ in range(max(depth, 1)):
            nxt = self._bound_once(e, side, depth)
            if nxt == e:
                return e
            e = nxt
            if isinstance(e, Const) or e.is_infinite:
                return e
        return e

    def _atom_rank(self, atom: Atom, depth: int, visiting: frozenset = frozenset()) -> int:
        """Dependency depth of an atom's facts: 0 = no facts, 1 = facts
        over unranked symbols, 1+max = facts referencing ranked atoms."""
        if atom in visiting or depth <= 0:
            return 0
        self._sync_memo()
        cached_rank = self._memo_rank.get(atom)
        if cached_rank is not None:
            return cached_rank
        endpoints: list[Expr] = []
        if isinstance(atom, Sym):
            rng = self.facts.sym_range(atom)
            if rng is None:
                self._memo_rank[atom] = 0
                return 0
            endpoints = [rng.lo, rng.hi]
        elif isinstance(atom, ArrayTerm):
            fact = self.facts.array_fact(atom.array)
            if fact is None or (fact.value_range is None and not fact.identity):
                self._memo_rank[atom] = 0
                return 0
            if fact.identity:
                endpoints = [atom.index]
            if fact.value_range is not None:
                endpoints += [fact.value_range.lo, fact.value_range.hi]
        elif isinstance(atom, OpaqueTerm):
            endpoints = list(atom.args)
        sub_rank = 0
        nested = visiting | {atom}
        for ep in endpoints:
            if ep.is_infinite or ep.is_bottom:
                continue
            for a in ep.atoms():
                sub_rank = max(sub_rank, self._atom_rank(a, depth - 1, nested))
        rank = 1 + sub_rank
        self._memo_rank[atom] = rank
        return rank

    def _bound_once(self, e: Expr, side: _Side, depth: int) -> Expr:
        if isinstance(e, Const) or e.is_infinite or e.is_bottom:
            return e
        if isinstance(e, Atom):
            return self._bound_atom(e, side, depth)
        assert isinstance(e, Sum)
        ranks = {a: self._atom_rank(a, depth) for _, mono in e.terms for a in mono}
        ranked = [r for r in ranks.values() if r >= 1]
        if not ranked:
            return e
        target_rank = max(ranked)
        parts: list[Expr] = [const(e.const)]
        for coeff, mono in e.terms:
            term_side = side if coeff > 0 else side.flip()
            if len(mono) == 1:
                atom = mono[0]
                if ranks[atom] == target_rank:
                    b = self._bound_atom(atom, term_side, depth)
                else:
                    b = atom
                if b.is_infinite:
                    return POS_INF if side is _Side.HIGH else NEG_INF
                parts.append(mul(coeff, b))
            else:
                bounded = self._bound_product(mono, term_side, depth)
                if bounded is None:
                    return POS_INF if side is _Side.HIGH else NEG_INF
                parts.append(mul(coeff, bounded))
        return add(*parts)

    def _bound_product(self, mono: tuple[Atom, ...], side: _Side, depth: int) -> Expr | None:
        """Bound a product of atoms; exact only with constant atom bounds."""
        intervals: list[tuple[Number, Number]] = []
        for atom in mono:
            lo = self._bound(atom, _Side.LOW, depth - 1)
            hi = self._bound(atom, _Side.HIGH, depth - 1)
            if isinstance(lo, Const) and isinstance(hi, Const):
                intervals.append((lo.value, hi.value))
            else:
                return None
        candidates: list[Number] = [1]
        for lo_v, hi_v in intervals:
            candidates = [c * v for c in candidates for v in (lo_v, hi_v)]
        return const(min(candidates) if side is _Side.LOW else max(candidates))

    def _bound_atom(self, atom: Atom, side: _Side, depth: int) -> Expr:
        if isinstance(atom, Sym):
            rng = self.facts.sym_range(atom)
            if rng is None:
                return atom
            ep = rng.lo if side is _Side.LOW else rng.hi
            if ep.is_infinite or ep == atom:
                return atom  # keep symbolic; it may cancel
            return ep  # one layer only; the outer fixpoint iterates
        if isinstance(atom, ArrayTerm):
            return self._bound_array_term(atom, side, depth)
        if isinstance(atom, OpaqueTerm):
            return self._bound_opaque(atom, side, depth)
        return atom

    def _bound_array_term(self, at: ArrayTerm, side: _Side, depth: int) -> Expr:
        fact = self.facts.array_fact(at.array)
        if fact is None:
            return at
        if fact.identity and self._index_in_section(at.index, fact, depth):
            return at.index
        if fact.value_range is not None and self._index_in_section(at.index, fact, depth):
            ep = fact.value_range.lo if side is _Side.LOW else fact.value_range.hi
            if ep.is_infinite:
                return at
            return ep
        return at

    def _index_in_section(self, index: Expr, fact: ArrayFact, depth: int) -> bool:
        if fact.section is None:
            return True
        inside = tri_and(
            self._nonneg(sub(index, fact.section.lo), depth - 1),
            self._nonneg(sub(fact.section.hi, index), depth - 1),
        )
        return inside is Tri.TRUE

    def _bound_opaque(self, op: OpaqueTerm, side: _Side, depth: int) -> Expr:
        if op.op in (OpaqueOp.MIN, OpaqueOp.MAX):
            bounds = [self._bound(a, side, depth - 1) for a in op.args]
            if any(b.is_infinite for b in bounds):
                return op
            from repro.symbolic.expr import smax, smin

            # min(args): lo = min(arg lows), hi = min(arg highs); dually max.
            return smin(*bounds) if op.op is OpaqueOp.MIN else smax(*bounds)
        if op.op is OpaqueOp.MOD:
            x, c = op.args
            if isinstance(c, Const) and c.value > 0:
                cm1 = const(c.value - 1)
                if side is _Side.HIGH:
                    return cm1
                # C remainder has the sign of the dividend
                if self._nonneg(x, depth - 1) is Tri.TRUE:
                    return ZERO
                return const(-(c.value - 1))
            return op
        if op.op is OpaqueOp.FLOORDIV:
            x, c = op.args
            if isinstance(c, Const) and c.value != 0:
                xlo = self._bound(x, _Side.LOW, depth - 1)
                xhi = self._bound(x, _Side.HIGH, depth - 1)
                if isinstance(xlo, Const) and isinstance(xhi, Const):
                    q = [
                        trunc_div(xlo.value, c.value),
                        trunc_div(xhi.value, c.value),
                    ]
                    return const(min(q)) if side is _Side.LOW else const(max(q))
            return op
        return op


# -- module-level convenience wrappers ---------------------------------------


def prove_le(a: ExprLike, b: ExprLike, facts: FactEnv | None = None) -> Tri:
    return Prover(facts).le(a, b)


def prove_lt(a: ExprLike, b: ExprLike, facts: FactEnv | None = None) -> Tri:
    return Prover(facts).lt(a, b)


def prove_nonneg(e: ExprLike, facts: FactEnv | None = None) -> Tri:
    return Prover(facts).nonneg(e)


def prove_eq(a: ExprLike, b: ExprLike, facts: FactEnv | None = None) -> Tri:
    return Prover(facts).eq(a, b)

"""Canonical symbolic integer expressions.

The analysis of the paper (Section 3) manipulates symbolic values such as
``λ + 1``, ``Λ + n*k``, ``rowptr[i-1] + [0 : COLUMNLEN-1]``.  This module
provides the expression layer: immutable, canonicalized expressions over

* named symbols (:class:`Sym`) with a *kind* distinguishing ordinary
  variables, symbolic parameters, loop variables, and the paper's special
  symbols λ (value of a variable at the start of the current iteration,
  kind ``ITER0``) and Λ (value at loop entry, kind ``LOOP0``);
* array-element atoms (:class:`ArrayTerm`), e.g. the symbolic value
  ``rowptr[i-1]``;
* opaque interpreted operators (:class:`OpaqueTerm`) for floor division,
  modulo, min and max, which the canonicalizer treats as atoms;
* the unknown value ⊥ (:data:`BOTTOM`) and the infinities used as range
  endpoints.

Every expression is normalized on construction into either a
:class:`Const` or a :class:`Sum` of monomials with ``Fraction``
coefficients, so structural equality coincides with algebraic equality for
the linear fragment the paper's algorithm needs (plus products of atoms).

Construction goes through the factory functions :func:`add`, :func:`sub`,
:func:`mul`, :func:`neg`, :func:`intdiv`, :func:`mod`, :func:`smin`,
:func:`smax`; the Python operators on :class:`Expr` delegate to them.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.errors import SymbolicError

Number = Union[int, Fraction]


class SymKind(Enum):
    """Role of a named symbol inside the analysis."""

    VAR = "var"  # ordinary program variable
    PARAM = "param"  # symbolic constant (e.g. ROWLEN)
    LOOPVAR = "loopvar"  # normalized loop index
    ITER0 = "iter0"  # λ: value at start of the current iteration
    LOOP0 = "loop0"  # Λ: value at loop entry
    FRESH = "fresh"  # internal fresh symbol (e.g. iteration distance δ)


# --------------------------------------------------------------------------
# Expression node classes
# --------------------------------------------------------------------------
#
# Every node class is *hash-consed*: construction goes through an intern
# table keyed by the (normalized) constructor arguments, so two
# structurally equal constructions return the identical object.  This
# makes ``__eq__`` / ``__hash__`` plain pointer operations (the object
# defaults), which is what the analysis hot paths — memo-table lookups,
# monomial sorting, frozenset/dict membership — actually spend their
# time on.
#
# The intern tables are unbounded and must NEVER be cleared while expr
# objects may be alive: clearing one would allow a later construction to
# produce a second, non-identical object that is structurally equal to a
# live one, silently breaking identity-as-equality everywhere.  They are
# therefore deliberately *not* part of the memo-table registry below
# (memo tables cache derived results and may be dropped at any time;
# intern tables define object identity and may not).


class Expr:
    """Base class of all symbolic expressions (immutable, interned)."""

    __slots__ = ()

    # -- immutability / interning support -----------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo: dict) -> "Expr":
        return self

    # -- classification helpers -------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return isinstance(self, BottomExpr)

    @property
    def is_infinite(self) -> bool:
        return isinstance(self, InfExpr)

    @property
    def is_const(self) -> bool:
        return isinstance(self, Const)

    def const_value(self) -> Fraction:
        """Value of a :class:`Const`; raises otherwise."""
        raise SymbolicError(f"not a constant: {self}")

    # -- structure ----------------------------------------------------------
    def atoms(self) -> frozenset["Atom"]:
        """All atoms (syms, array terms, opaque terms) in the expression."""
        return frozenset()

    def free_syms(self) -> frozenset["Sym"]:
        """All :class:`Sym` leaves, including those nested inside atoms."""
        out: set[Sym] = set()
        for a in self.atoms():
            out.update(a.free_syms())
        return frozenset(out)

    def subst(self, fn: "SubstFn") -> "Expr":
        """Rebuild the expression, replacing atoms via ``fn``.

        ``fn`` receives each atom and returns a replacement :class:`Expr`
        or ``None`` to keep the atom (its sub-expressions are still
        rewritten recursively).
        """
        return self

    def subst_map(self, mapping: Mapping["Atom", "Expr"]) -> "Expr":
        """Substitute by dictionary lookup on atoms."""
        return self.subst(lambda a: mapping.get(a))

    def contains(self, atom: "Atom") -> bool:
        """Does ``atom`` occur anywhere in this expression, including
        nested inside array indices and opaque-operator arguments?

        (Delegates to :func:`occurs_in`.  A previous inline version
        guarded the nested search with ``if isinstance(atom, Sym)`` —
        a condition independent of the iterated atom — so non-``Sym``
        atoms nested inside :class:`ArrayTerm` indices or
        :class:`OpaqueTerm` arguments were never found.)
        """
        return occurs_in(atom, self)

    # -- ordering key (deterministic canonical order) -----------------------
    def _key(self) -> tuple:
        raise NotImplementedError

    # -- python arithmetic operators ----------------------------------------
    def __add__(self, other: "ExprLike") -> "Expr":
        return add(self, other)

    def __radd__(self, other: "ExprLike") -> "Expr":
        return add(other, self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return sub(self, other)

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return sub(other, self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return mul(self, other)

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return mul(other, self)

    def __neg__(self) -> "Expr":
        return neg(self)


ExprLike = Union[Expr, int, Fraction]


class Atom(Expr):
    """An expression the canonicalizer treats as indivisible."""

    __slots__ = ()


_const_intern: dict[Fraction, "Const"] = {}
#: Integer fast path: ``hash(Fraction)`` needs a modular inverse, so the
#: ubiquitous integer constants get their own int-keyed table.  An
#: integer-valued Fraction and its int hash/compare equal, so the two
#: tables can never disagree — ints are normalized before the main
#: table is consulted.
_const_int_intern: dict[int, "Const"] = {}


class Const(Expr):
    """An integer (or exact rational) constant.

    ``value`` is a native ``int`` for integer constants and a
    ``Fraction`` only for genuine rationals: every numeric protocol the
    analyzer relies on (ordering, arithmetic, ``numerator`` /
    ``denominator``) is shared between the two, and the all-integer hot
    path — virtually every expression the corpus produces — then never
    pays ``Fraction.__new__``/``__add__``/``__eq__``.
    """

    __slots__ = ("value", "_key_cache")

    value: Number

    def __new__(cls, value: Number) -> "Const":
        if type(value) is int:
            self = _const_int_intern.get(value)
            if self is None:
                self = object.__new__(cls)
                object.__setattr__(self, "value", value)
                object.__setattr__(self, "_key_cache", None)
                _const_int_intern[value] = self
            return self
        if type(value) is not Fraction:
            value = Fraction(value)
        if value.denominator == 1:
            return cls.__new__(cls, value.numerator)
        self = _const_intern.get(value)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            object.__setattr__(self, "_key_cache", None)
            _const_intern[value] = self
        return self

    def __reduce__(self) -> tuple:
        return (Const, (self.value,))

    def const_value(self) -> Fraction:
        return self.value

    def _key(self) -> tuple:
        k = self._key_cache
        if k is None:
            k = (0, float(self.value))
            object.__setattr__(self, "_key_cache", k)
        return k

    def __str__(self) -> str:
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return f"({self.value.numerator}/{self.value.denominator})"

    def __repr__(self) -> str:
        return f"Const({self.value})"


_sym_intern: dict[tuple[str, SymKind], "Sym"] = {}


class Sym(Atom):
    """A named symbol with a :class:`SymKind` role."""

    __slots__ = ("name", "kind", "_key_cache")

    name: str
    kind: SymKind

    def __new__(cls, name: str, kind: SymKind = SymKind.VAR) -> "Sym":
        key = (name, kind)
        self = _sym_intern.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            object.__setattr__(self, "kind", kind)
            object.__setattr__(self, "_key_cache", None)
            _sym_intern[key] = self
        return self

    def __reduce__(self) -> tuple:
        return (Sym, (self.name, self.kind))

    def atoms(self) -> frozenset[Atom]:
        return frozenset({self})

    def free_syms(self) -> frozenset["Sym"]:
        return frozenset({self})

    def subst(self, fn: "SubstFn") -> Expr:
        rep = fn(self)
        return rep if rep is not None else self

    def _key(self) -> tuple:
        k = self._key_cache
        if k is None:
            k = (1, self.kind.value, self.name)
            object.__setattr__(self, "_key_cache", k)
        return k

    def __str__(self) -> str:
        if self.kind is SymKind.ITER0:
            return f"λ({self.name})"
        if self.kind is SymKind.LOOP0:
            return f"Λ({self.name})"
        return self.name

    def __repr__(self) -> str:
        return f"Sym({self.name!r}, {self.kind.name})"


_array_intern: dict[tuple[str, Expr], "ArrayTerm"] = {}


class ArrayTerm(Atom):
    """The symbolic value of one array element, e.g. ``rowptr[i-1]``."""

    __slots__ = ("array", "index", "_key_cache")

    array: str
    index: Expr

    def __new__(cls, array: str, index: Expr) -> "ArrayTerm":
        key = (array, index)
        self = _array_intern.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "array", array)
            object.__setattr__(self, "index", index)
            object.__setattr__(self, "_key_cache", None)
            _array_intern[key] = self
        return self

    def __reduce__(self) -> tuple:
        return (ArrayTerm, (self.array, self.index))

    def atoms(self) -> frozenset[Atom]:
        return frozenset({self})

    def free_syms(self) -> frozenset[Sym]:
        return self.index.free_syms()

    def subst(self, fn: "SubstFn") -> Expr:
        rep = fn(self)
        if rep is not None:
            return rep
        new_index = self.index.subst(fn)
        if new_index is self.index:
            return self
        if new_index.is_bottom:
            return BOTTOM
        return ArrayTerm(self.array, new_index)

    def _key(self) -> tuple:
        k = self._key_cache
        if k is None:
            k = (2, self.array, self.index._key())
            object.__setattr__(self, "_key_cache", k)
        return k

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"

    def __repr__(self) -> str:
        return f"ArrayTerm({self.array!r}, {self.index!r})"


class OpaqueOp(Enum):
    FLOORDIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"


_opaque_intern: dict[tuple[OpaqueOp, tuple[Expr, ...]], "OpaqueTerm"] = {}


class OpaqueTerm(Atom):
    """An interpreted but non-linear operator, treated as an atom."""

    __slots__ = ("op", "args", "_key_cache")

    op: OpaqueOp
    args: tuple[Expr, ...]

    def __new__(cls, op: OpaqueOp, args: Iterable[Expr]) -> "OpaqueTerm":
        if type(args) is not tuple:
            args = tuple(args)
        key = (op, args)
        self = _opaque_intern.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "args", args)
            object.__setattr__(self, "_key_cache", None)
            _opaque_intern[key] = self
        return self

    def __reduce__(self) -> tuple:
        return (OpaqueTerm, (self.op, self.args))

    def atoms(self) -> frozenset[Atom]:
        return frozenset({self})

    def free_syms(self) -> frozenset[Sym]:
        out: set[Sym] = set()
        for a in self.args:
            out.update(a.free_syms())
        return frozenset(out)

    def subst(self, fn: "SubstFn") -> Expr:
        rep = fn(self)
        if rep is not None:
            return rep
        new_args = tuple(a.subst(fn) for a in self.args)
        if all(n is o for n, o in zip(new_args, self.args)):
            return self
        return _rebuild_opaque(self.op, new_args)

    def _key(self) -> tuple:
        k = self._key_cache
        if k is None:
            k = (3, self.op.value, tuple(a._key() for a in self.args))
            object.__setattr__(self, "_key_cache", k)
        return k

    def __str__(self) -> str:
        if self.op is OpaqueOp.FLOORDIV:
            return f"({self.args[0]} / {self.args[1]})"
        if self.op is OpaqueOp.MOD:
            return f"({self.args[0]} % {self.args[1]})"
        return f"{self.op.value}({', '.join(map(str, self.args))})"

    def __repr__(self) -> str:
        return f"OpaqueTerm({self.op.name}, {self.args!r})"


class BottomExpr(Expr):
    """⊥ — a value the compiler cannot analyze.  Absorbing element."""

    __slots__ = ()
    _instance: "BottomExpr | None" = None

    def __new__(cls) -> "BottomExpr":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __reduce__(self) -> tuple:
        return (BottomExpr, ())

    def _key(self) -> tuple:
        return (9,)

    def __str__(self) -> str:
        return "⊥"

    def __repr__(self) -> str:
        return "BOTTOM"


class InfExpr(Expr):
    """±∞, used only as a range endpoint."""

    __slots__ = ("positive",)
    _pos: "InfExpr | None" = None
    _neg: "InfExpr | None" = None

    positive: bool

    def __new__(cls, positive: bool) -> "InfExpr":
        self = cls._pos if positive else cls._neg
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "positive", bool(positive))
            if positive:
                cls._pos = self
            else:
                cls._neg = self
        return self

    def __reduce__(self) -> tuple:
        return (InfExpr, (self.positive,))

    def _key(self) -> tuple:
        return (8, self.positive)

    def __str__(self) -> str:
        return "+inf" if self.positive else "-inf"

    def __repr__(self) -> str:
        return "POS_INF" if self.positive else "NEG_INF"


BOTTOM = BottomExpr()
POS_INF = InfExpr(True)
NEG_INF = InfExpr(False)

# A monomial is a sorted tuple of atoms (with repetition for powers).
Monomial = tuple[Atom, ...]


_sum_intern: dict[tuple, "Sum"] = {}


class Sum(Expr):
    """Canonical linear combination: ``const + Σ coeff_i * monomial_i``.

    Invariants enforced by :func:`_make_sum`: no zero coefficients, at
    least one term (otherwise a :class:`Const` is produced), terms sorted
    by monomial key, monomials non-empty and internally sorted.
    """

    __slots__ = ("const", "terms", "_key_cache")

    const: Number
    terms: tuple[tuple[Number, Monomial], ...]

    def __new__(
        cls, const: Number, terms: tuple[tuple[Number, Monomial], ...]
    ) -> "Sum":
        # Key on (numerator, denominator) int pairs rather than the
        # Fractions themselves: Fraction.__hash__ computes a modular
        # inverse per call, which dominated this lookup.  ``int`` and
        # integer-valued ``Fraction`` coefficients produce the same key,
        # so mixed callers still intern to one node.
        key = (
            const.numerator,
            const.denominator,
            tuple((c.numerator, c.denominator, m) for c, m in terms),
        )
        self = _sum_intern.get(key)
        if self is None:
            # store integer values as native ints (the Const discipline):
            # downstream coefficient arithmetic then stays in fast int ops
            if type(const) is Fraction and const.denominator == 1:
                const = const.numerator
            terms = tuple(
                (
                    c.numerator
                    if type(c) is Fraction and c.denominator == 1
                    else c,
                    m,
                )
                for c, m in terms
            )
            self = object.__new__(cls)
            object.__setattr__(self, "const", const)
            object.__setattr__(self, "terms", terms)
            object.__setattr__(self, "_key_cache", None)
            _sum_intern[key] = self
        return self

    def __reduce__(self) -> tuple:
        return (Sum, (self.const, self.terms))

    def atoms(self) -> frozenset[Atom]:
        out: set[Atom] = set()
        for _, mono in self.terms:
            out.update(mono)
        return frozenset(out)

    def subst(self, fn: "SubstFn") -> Expr:
        parts: list[Expr] = [Const(self.const)]
        changed = False
        for coeff, mono in self.terms:
            factors: list[Expr] = [Const(coeff)]
            for atom in mono:
                new_atom = atom.subst(fn)
                if new_atom is not atom:
                    changed = True
                factors.append(new_atom)
            parts.append(mul(*factors))
        if not changed:
            return self
        return add(*parts)

    def _key(self) -> tuple:
        k = self._key_cache
        if k is None:
            k = (
                5,
                float(self.const),
                tuple((float(c), tuple(a._key() for a in m)) for c, m in self.terms),
            )
            object.__setattr__(self, "_key_cache", k)
        return k

    def __str__(self) -> str:
        chunks: list[str] = []
        for coeff, mono in self.terms:
            body = "*".join(str(a) for a in mono)
            if coeff == 1:
                chunk = body
            elif coeff == -1:
                chunk = f"-{body}"
            else:
                c = Const(coeff)
                chunk = f"{c}*{body}"
            chunks.append(chunk)
        if self.const != 0 or not chunks:
            chunks.append(str(Const(self.const)))
        text = chunks[0]
        for chunk in chunks[1:]:
            text += f" - {chunk[1:]}" if chunk.startswith("-") else f" + {chunk}"
        return text

    def __repr__(self) -> str:
        return f"Sum({self})"


SubstFn = Callable[[Atom], "Expr | None"]


# --------------------------------------------------------------------------
# Memoization of the canonicalizing constructors
# --------------------------------------------------------------------------
#
# Profiling the full-corpus analysis sweep (``benchmarks/
# bench_analysis_cost.py``) shows the pipeline spends most of its
# symbolic time re-canonicalizing the *same* small expressions: ``add``
# / ``mul`` / ``smin`` / ``smax`` are called thousands of times per
# kernel with a handful of distinct argument tuples (loop bounds,
# iteration distances, range endpoints).  Every :class:`Expr` is
# immutable and hashable, so the constructors are pure functions of
# their argument tuples and can be memoized safely — a cached result may
# be shared freely.
#
# The tables are bounded: when one exceeds ``_MEMO_LIMIT`` entries it is
# cleared wholesale (cheaper and simpler than LRU bookkeeping at this
# call rate; the working set per kernel is far below the limit).

_MEMO_LIMIT = 1 << 16

_memo_add: dict[tuple, Expr] = {}
_memo_mul: dict[tuple, Expr] = {}
_memo_minmax: dict[tuple, Expr] = {}
_memo_stats = {"hits": 0, "misses": 0}

# Registry of every memo table in the symbolic layer: name -> (entries,
# clear).  Modules that own a memo table (this one, ``ranges``,
# ``compare``) register it at import time, so :func:`clear_memo_tables`
# and :func:`memo_stats` cover all of them — a "cold" benchmark run is
# genuinely cold.  Intern tables are deliberately NOT registered: they
# define object identity and must never be cleared (see the note above
# the node classes).
_MEMO_REGISTRY: dict[str, tuple[Callable[[], int], Callable[[], None]]] = {}


def register_memo_table(
    name: str, entries: Callable[[], int], clear: Callable[[], None]
) -> None:
    """Register a memo table with the symbolic-layer registry.

    ``entries`` reports the current number of cached entries; ``clear``
    drops them all.  Clearing must always be safe (memo tables cache
    derived results only)."""
    _MEMO_REGISTRY[name] = (entries, clear)


register_memo_table("expr.add", _memo_add.__len__, _memo_add.clear)
register_memo_table("expr.mul", _memo_mul.__len__, _memo_mul.clear)
register_memo_table("expr.minmax", _memo_minmax.__len__, _memo_minmax.clear)


def _import_memo_owners() -> None:
    # Modules register their tables on import; force them in so the
    # registry is complete even if the caller only imported ``expr``.
    from repro.analysis import framework  # noqa: F401
    from repro.runtime import parallel  # noqa: F401
    from repro.symbolic import compare, ranges  # noqa: F401


def clear_memo_tables() -> None:
    """Drop every registered memo table (constructor memos here, the
    range-substitution memo in :mod:`repro.symbolic.ranges`, the prover
    memos in :mod:`repro.symbolic.compare`) and reset the counters —
    lets benchmarks measure genuinely cold runs.  Intern tables are left
    alone: dropping them would break the identity-as-equality invariant
    for live expressions."""
    _import_memo_owners()
    for _, clear in _MEMO_REGISTRY.values():
        clear()
    _memo_stats["hits"] = 0
    _memo_stats["misses"] = 0


def memo_stats() -> dict:
    """Hit/miss counters plus current sizes of every registered memo
    table (``tables`` maps registry name to entry count)."""
    _import_memo_owners()
    tables = {name: entries() for name, (entries, _) in _MEMO_REGISTRY.items()}
    return {
        "hits": _memo_stats["hits"],
        "misses": _memo_stats["misses"],
        "entries": sum(tables.values()),
        "tables": tables,
    }


def intern_stats() -> dict[str, int]:
    """Sizes of the hash-cons intern tables (diagnostics only — these
    are not memo tables and are never cleared)."""
    return {
        "const": len(_const_intern) + len(_const_int_intern),
        "sym": len(_sym_intern),
        "array_term": len(_array_intern),
        "opaque_term": len(_opaque_intern),
        "sum": len(_sum_intern),
    }


def _memo_get(table: dict[tuple, Expr], key: tuple) -> Expr | None:
    hit = table.get(key)
    if hit is not None:
        _memo_stats["hits"] += 1
    else:
        _memo_stats["misses"] += 1
    return hit


def _memo_put(table: dict[tuple, Expr], key: tuple, value: Expr) -> Expr:
    # Wholesale clearing at the limit is safe under hash-consing: a memo
    # table only caches *which* interned node a constructor returns, so
    # dropping entries merely forces recomputation, which re-interns to
    # the identical object.  The intern tables themselves are unbounded
    # and never cleared.
    if len(table) >= _MEMO_LIMIT:
        table.clear()
    table[key] = value
    return value


# --------------------------------------------------------------------------
# Factories / canonicalization
# --------------------------------------------------------------------------


#: Shared Fraction constants: ``Fraction(0)``/``Fraction(1)`` construction
#: is surprisingly hot in the canonicalizers below.
_F0 = Fraction(0)
_F1 = Fraction(1)
#: Integer sentinels for the canonicalizer's coefficient arithmetic.
#: Coefficients and constants are native ints on the all-integer path
#: (see :class:`Const`/:class:`Sum`), so the accumulators below start
#: from these and ``int + int`` / ``int * int`` never touch ``Fraction``
#: unless a genuine rational enters the expression.
_I0 = 0
_I1 = 1


def _coerce(x: ExprLike) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, Fraction)):
        return Const(x)
    raise SymbolicError(f"cannot coerce {x!r} to Expr")


def const(v: Number) -> Const:
    """Integer/rational constant expression."""
    return Const(v)


ZERO = const(0)
ONE = const(1)


def var(name: str) -> Sym:
    """Ordinary program variable symbol."""
    return Sym(name, SymKind.VAR)


def param(name: str) -> Sym:
    """Symbolic constant (problem-size parameter)."""
    return Sym(name, SymKind.PARAM)


def loopvar(name: str) -> Sym:
    """Normalized loop-index symbol."""
    return Sym(name, SymKind.LOOPVAR)


def lam(name: str) -> Sym:
    """λ(name): value of ``name`` at the start of the current iteration."""
    return Sym(name, SymKind.ITER0)


def big_lam(name: str) -> Sym:
    """Λ(name): value of ``name`` at loop entry."""
    return Sym(name, SymKind.LOOP0)


def fresh(name: str) -> Sym:
    """Internal fresh symbol (e.g. the iteration distance δ)."""
    return Sym(name, SymKind.FRESH)


def array_term(array: str, index: ExprLike) -> Expr:
    """Symbolic value of ``array[index]`` (⊥ if the index is ⊥)."""
    idx = _coerce(index)
    if idx.is_bottom:
        return BOTTOM
    return ArrayTerm(array, idx)


def _accumulate(
    acc: dict[Monomial, Number], e: Expr, scale: Number
) -> Number:
    """Fold ``scale * e`` into the monomial accumulator; returns the
    constant contribution."""
    one = scale is _I1  # the add() path — skip the scale multiplies
    if isinstance(e, Const):
        return e.value if one else scale * e.value
    if isinstance(e, Sum):
        if one:
            for coeff, mono in e.terms:
                acc[mono] = acc.get(mono, _I0) + coeff
            return e.const
        for coeff, mono in e.terms:
            acc[mono] = acc.get(mono, _I0) + scale * coeff
        return scale * e.const
    if isinstance(e, Atom):
        mono: Monomial = (e,)
        acc[mono] = acc.get(mono, _I0) + scale
        return _I0
    raise SymbolicError(f"non-canonical expression in add: {e!r}")


def _make_sum(acc: dict[Monomial, Number], constant: Number) -> Expr:
    terms = tuple(
        sorted(
            ((c, m) for m, c in acc.items() if c != 0),
            key=lambda cm: tuple(a._key() for a in cm[1]),
        )
    )
    if not terms:
        return Const(constant)
    if constant == 0 and len(terms) == 1:
        coeff, mono = terms[0]
        if coeff == 1 and len(mono) == 1:
            return mono[0]  # collapse 1*atom back to the atom
    return Sum(constant, terms)


def add(*xs: ExprLike) -> Expr:
    """Canonical sum; ⊥ absorbs, ±∞ propagates (opposite infinities are an
    error — ranges never combine them through this function)."""
    cached = _memo_get(_memo_add, xs)
    if cached is not None:
        return cached
    es = [_coerce(x) for x in xs]
    if any(e.is_bottom for e in es):
        return BOTTOM
    infs = [e for e in es if e.is_infinite]
    if infs:
        if all(i.positive for i in infs):  # type: ignore[union-attr]
            return POS_INF
        if all(not i.positive for i in infs):  # type: ignore[union-attr]
            return NEG_INF
        raise SymbolicError("adding opposite infinities")
    acc: dict[Monomial, Number] = {}
    constant: Number = _I0
    for e in es:
        c = _accumulate(acc, e, _I1)
        if c is not _I0:
            constant = c if constant is _I0 else constant + c
    return _memo_put(_memo_add, xs, _make_sum(acc, constant))


def neg(x: ExprLike) -> Expr:
    return mul(-1, x)


def sub(a: ExprLike, b: ExprLike) -> Expr:
    return add(a, neg(b))


def _mul_two(a: Expr, b: Expr) -> Expr:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    # infinity times a sign-known constant
    for x, y in ((a, b), (b, a)):
        if x.is_infinite:
            if isinstance(y, Const):
                if y.value == 0:
                    return ZERO
                pos = x.positive if y.value > 0 else not x.positive  # type: ignore[union-attr]
                return POS_INF if pos else NEG_INF
            raise SymbolicError("multiplying infinity by a symbolic value")
    if isinstance(a, Const):
        if a.value == 0:
            return ZERO
        acc: dict[Monomial, Number] = {}
        constant = _accumulate(acc, b, a.value)
        return _make_sum(acc, constant)
    if isinstance(b, Const):
        return _mul_two(b, a)
    # distribute sums; products of atoms become longer monomials
    a_terms = _as_terms(a)
    b_terms = _as_terms(b)
    acc = {}
    constant = _I0
    for ca, ma in a_terms:
        for cb, mb in b_terms:
            coeff = ca * cb
            mono = tuple(sorted(ma + mb, key=lambda at: at._key()))
            if mono:
                acc[mono] = acc.get(mono, _I0) + coeff
            else:
                constant += coeff
    return _make_sum(acc, constant)


def _as_terms(e: Expr) -> list[tuple[Number, Monomial]]:
    """View an expression as a list of (coeff, monomial) pairs."""
    if isinstance(e, Const):
        return [(e.value, ())]
    if isinstance(e, Atom):
        return [(_I1, (e,))]
    if isinstance(e, Sum):
        out = list(e.terms)
        if e.const != 0:
            out.append((e.const, ()))
        return out
    raise SymbolicError(f"non-canonical expression in mul: {e!r}")


def mul(*xs: ExprLike) -> Expr:
    cached = _memo_get(_memo_mul, xs)
    if cached is not None:
        return cached
    es = [_coerce(x) for x in xs]
    out: Expr = ONE
    for e in es:
        out = _mul_two(out, e)
    return _memo_put(_memo_mul, xs, out)


def _rebuild_opaque(op: OpaqueOp, args: tuple[Expr, ...]) -> Expr:
    if op is OpaqueOp.FLOORDIV:
        return intdiv(args[0], args[1])
    if op is OpaqueOp.MOD:
        return mod(args[0], args[1])
    if op is OpaqueOp.MIN:
        return smin(*args)
    return smax(*args)


def trunc_div(a: Number, b: Number) -> int:
    """Exact C-style (truncate-toward-zero) division of two exact
    numbers.  Int operands never round-trip through ``Fraction`` (or,
    worse, ``float`` — ``int / int`` would lose precision on wide
    values); rationals stay exact."""
    if type(a) is int and type(b) is int:
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    import math

    return math.trunc(Fraction(a) / Fraction(b))


def intdiv(a: ExprLike, b: ExprLike) -> Expr:
    """C-style truncating division, folded when both sides are constant."""
    ea, eb = _coerce(a), _coerce(b)
    if ea.is_bottom or eb.is_bottom:
        return BOTTOM
    if isinstance(eb, Const) and eb.value == 0:
        return BOTTOM
    if isinstance(ea, Const) and isinstance(eb, Const):
        return const(trunc_div(ea.value, eb.value))
    if isinstance(eb, Const) and eb.value == 1:
        return ea
    return OpaqueTerm(OpaqueOp.FLOORDIV, (ea, eb))


def mod(a: ExprLike, b: ExprLike) -> Expr:
    """C-style remainder, folded when both sides are constant."""
    ea, eb = _coerce(a), _coerce(b)
    if ea.is_bottom or eb.is_bottom:
        return BOTTOM
    if isinstance(eb, Const) and eb.value == 0:
        return BOTTOM
    if isinstance(ea, Const) and isinstance(eb, Const):
        q = trunc_div(ea.value, eb.value)
        return const(ea.value - q * eb.value)
    return OpaqueTerm(OpaqueOp.MOD, (ea, eb))


def _fold_minmax(op: OpaqueOp, xs: Sequence[ExprLike]) -> Expr:
    key = (op, *xs)
    cached = _memo_get(_memo_minmax, key)
    if cached is not None:
        return cached
    return _memo_put(_memo_minmax, key, _fold_minmax_uncached(op, xs))


def _fold_minmax_uncached(op: OpaqueOp, xs: Sequence[ExprLike]) -> Expr:
    es: list[Expr] = []
    for x in xs:
        e = _coerce(x)
        if e.is_bottom:
            return BOTTOM
        if isinstance(e, OpaqueTerm) and e.op is op:
            es.extend(e.args)
        else:
            es.append(e)
    pick = min if op is OpaqueOp.MIN else max
    # fold infinities
    if op is OpaqueOp.MIN and any(e is NEG_INF for e in es):
        return NEG_INF
    if op is OpaqueOp.MAX and any(e is POS_INF for e in es):
        return POS_INF
    absorb = POS_INF if op is OpaqueOp.MIN else NEG_INF
    es = [e for e in es if e is not absorb]
    if not es:
        return absorb
    # eliminate arguments dominated by a constant offset: min(x, x+1) = x
    keep_smaller = op is OpaqueOp.MIN
    kept: list[Expr] = []
    for e in es:
        dominated = False
        for i, k in enumerate(kept):
            diff = add(e, mul(-1, k))
            if isinstance(diff, Const):
                better_is_e = (diff.value < 0) if keep_smaller else (diff.value > 0)
                if better_is_e:
                    kept[i] = e
                dominated = True
                break
        if not dominated:
            kept.append(e)
    consts = [e for e in kept if isinstance(e, Const)]
    others: list[Expr] = []
    for e in kept:
        if not isinstance(e, Const) and e not in others:
            others.append(e)
    if consts:
        folded = const(pick(c.value for c in consts))
        if not others:
            return folded
        others.append(folded)
    if len(others) == 1:
        return others[0]
    others.sort(key=lambda e: e._key())
    return OpaqueTerm(op, tuple(others))


def smin(*xs: ExprLike) -> Expr:
    """Symbolic minimum (n-ary, flattened, constants folded)."""
    return _fold_minmax(OpaqueOp.MIN, xs)


def smax(*xs: ExprLike) -> Expr:
    """Symbolic maximum (n-ary, flattened, constants folded)."""
    return _fold_minmax(OpaqueOp.MAX, xs)


# --------------------------------------------------------------------------
# Queries on canonical expressions
# --------------------------------------------------------------------------


def occurs_in(needle: Atom, hay: Expr) -> bool:
    """Does ``needle`` occur anywhere inside ``hay`` (including nested in
    array indices and opaque-operator arguments)?"""
    if hay == needle:
        return True
    if isinstance(hay, ArrayTerm):
        return occurs_in(needle, hay.index)
    if isinstance(hay, OpaqueTerm):
        return any(occurs_in(needle, a) for a in hay.args)
    if isinstance(hay, Sum):
        for _, mono in hay.terms:
            for atom in mono:
                if occurs_in(needle, atom):
                    return True
        return False
    return False


def as_linear(e: Expr, atom: Atom) -> tuple[Expr, Expr] | None:
    """Decompose ``e == a*atom + b`` with ``a``, ``b`` free of ``atom``.

    Works for any atom kind (symbols and array terms alike).  Returns
    ``(a, b)`` or ``None`` if ``e`` is not linear in ``atom`` (e.g. the
    atom appears inside another atom's sub-expression or with itself in
    one monomial).
    """
    if isinstance(e, Const):
        return (ZERO, e)
    if e.is_infinite or e.is_bottom:
        return None
    coeff_terms: list[Expr] = []
    rest_terms: list[Expr] = []
    for c, mono in _as_terms(e):
        occurs = [a for a in mono if a == atom]
        nested = any(a != atom and occurs_in(atom, a) for a in mono)
        if nested or len(occurs) > 1:
            return None
        if occurs:
            others = tuple(a for a in mono if a != atom)
            coeff_terms.append(mul(const(c), *others) if others else const(c))
        else:
            rest_terms.append(mul(const(c), *mono) if mono else const(c))
    a = add(*coeff_terms) if coeff_terms else ZERO
    b = add(*rest_terms) if rest_terms else ZERO
    return a, b


def array_terms_of(e: Expr) -> list[ArrayTerm]:
    """All :class:`ArrayTerm` atoms appearing (top level) in ``e``."""
    return [a for a in e.atoms() if isinstance(a, ArrayTerm)]


def evaluate(e: Expr, env: Mapping[Atom, Number] | Mapping[Sym, Number]) -> Fraction:
    """Concretely evaluate ``e`` given numeric bindings for its atoms.

    Used by the property-based tests to check that canonicalization is
    meaning-preserving.  ``env`` may bind atoms directly; symbols nested
    inside :class:`ArrayTerm` / :class:`OpaqueTerm` are resolved
    recursively when the atom itself is unbound.
    """
    if isinstance(e, Const):
        return e.value
    if e.is_bottom or e.is_infinite:
        raise SymbolicError(f"cannot evaluate {e}")
    if isinstance(e, Atom):
        if e in env:
            return Fraction(env[e])  # type: ignore[index]
        if isinstance(e, OpaqueTerm):
            vals = [evaluate(a, env) for a in e.args]
            if e.op is OpaqueOp.MIN:
                return min(vals)
            if e.op is OpaqueOp.MAX:
                return max(vals)
            if e.op is OpaqueOp.FLOORDIV:
                if vals[1] == 0:
                    raise SymbolicError("division by zero in evaluate")
                return trunc_div(vals[0], vals[1])
            if vals[1] == 0:
                raise SymbolicError("mod by zero in evaluate")
            q = trunc_div(vals[0], vals[1])
            return vals[0] - q * vals[1]
        raise SymbolicError(f"unbound atom {e} in evaluate")
    assert isinstance(e, Sum)
    total = e.const
    for coeff, mono in e.terms:
        prod = Fraction(1)
        for atom in mono:
            prod *= evaluate(atom, env)
        total += coeff * prod
    return total


def is_nonneg_const(e: Expr) -> bool:
    return isinstance(e, Const) and e.value >= 0


def is_pos_const(e: Expr) -> bool:
    return isinstance(e, Const) and e.value > 0

"""repro — full reproduction of *Compile-time Parallelization of
Subscripted Subscript Patterns* (Bhosale & Eigenmann, 2020).

The package implements, from scratch:

* a mini-C frontend and loop IR (:mod:`repro.frontend`, :mod:`repro.ir`);
* the symbolic range algebra with λ/Λ/⊥ and a monotonicity-aware prover
  (:mod:`repro.symbolic`);
* the paper's two-phase aggregation analysis that derives index-array
  properties from the filling code (:mod:`repro.analysis`);
* classic dependence tests plus the extended Range Test
  (:mod:`repro.dependence`);
* the automatic parallelizer emitting annotated C
  (:mod:`repro.parallelizer`);
* a runtime substrate — reference interpreter plus a closure-compiled
  engine with batched NumPy tracing (``engine="interp"|"compiled"``),
  dynamic independence oracle, machine model, real parallel executor
  (:mod:`repro.runtime`, CLI: ``repro bench``);
* workloads (NPB CG, UA, CSparse equivalents), the figure corpus, the
  Section-2 study and the Figure-10 evaluation harness;
* a batch analysis service with content-addressed result caching and
  parallel workers (:mod:`repro.service`, CLI: ``repro batch``).

Quickstart::

    from repro import parallelize
    out = parallelize(C_SOURCE)
    print(out.annotated_c)
"""

from repro.analysis import PropertyEnv, analyze_function, render_trace
from repro.dependence import compare_methods, test_loop
from repro.ir import build_function, build_program, function_to_c
from repro.parallelizer import parallelize
from repro.runtime import check_loop_independence, compile_function, execute, run_function

__version__ = "1.1.0"

__all__ = [
    "PropertyEnv",
    "analyze_function",
    "build_function",
    "build_program",
    "check_loop_independence",
    "compare_methods",
    "compile_function",
    "execute",
    "function_to_c",
    "parallelize",
    "render_trace",
    "run_function",
    "test_loop",
    "__version__",
]

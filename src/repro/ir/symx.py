"""Bridge from IR expressions to the symbolic algebra.

Arithmetic IR expressions become canonical symbolic expressions; anything
the analysis cannot represent (calls, floats, multi-dimensional array
values) becomes ⊥, exactly as the paper prescribes for "too complex to
represent".  Comparison/logical expressions are converted separately into
:class:`CondAtom` constraints for conditional range refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import IArrayRef, IBin, ICall, IConst, IExpr, IFloat, IUn, IVar
from repro.symbolic.expr import (
    BOTTOM,
    Expr,
    add,
    array_term,
    const,
    intdiv,
    mod,
    mul,
    neg,
    sub,
    var,
)

_CMP = {"<", "<=", ">", ">=", "==", "!="}


def ir_to_sym(e: IExpr) -> Expr:
    """Convert an arithmetic IR expression to a symbolic expression (⊥ for
    unrepresentable forms)."""
    if isinstance(e, IConst):
        return const(e.value)
    if isinstance(e, IFloat):
        return BOTTOM
    if isinstance(e, IVar):
        return var(e.name)
    if isinstance(e, IArrayRef):
        if len(e.indices) != 1:
            return BOTTOM
        idx = ir_to_sym(e.indices[0])
        if idx.is_bottom:
            return BOTTOM
        return array_term(e.array, idx)
    if isinstance(e, IUn):
        if e.op == "-":
            return neg(ir_to_sym(e.operand))
        return BOTTOM  # logical not has no arithmetic value here
    if isinstance(e, IBin):
        if e.op in _CMP or e.op in ("&&", "||"):
            return BOTTOM  # boolean-valued; handled by conditions
        left = ir_to_sym(e.left)
        right = ir_to_sym(e.right)
        if e.op == "+":
            return add(left, right)
        if e.op == "-":
            return sub(left, right)
        if e.op == "*":
            return mul(left, right)
        if e.op == "/":
            return intdiv(left, right)
        if e.op == "%":
            return mod(left, right)
        return BOTTOM
    if isinstance(e, ICall):
        return BOTTOM
    return BOTTOM


@dataclass(frozen=True, slots=True)
class CondAtom:
    """One comparison constraint ``lhs op rhs`` over symbolic expressions."""

    op: str  # <, <=, >, >=, ==, !=
    lhs: Expr
    rhs: Expr

    def negated(self) -> "CondAtom":
        opposite = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
        return CondAtom(opposite[self.op], self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


def cond_to_atoms(e: IExpr) -> tuple[list[CondAtom], bool]:
    """Decompose a condition into a *conjunction* of comparison atoms.

    Returns ``(atoms, exact)``; ``exact`` is False when parts of the
    condition could not be captured (disjunctions, calls, ...), in which
    case the atoms returned are still *implied by* the condition — safe
    for refinement of the true-branch, but the else-branch must then not
    assume the negation.
    """
    if isinstance(e, IBin) and e.op == "&&":
        left, lex = cond_to_atoms(e.left)
        right, rex = cond_to_atoms(e.right)
        return left + right, lex and rex
    if isinstance(e, IBin) and e.op in _CMP:
        lhs = ir_to_sym(e.left)
        rhs = ir_to_sym(e.right)
        if lhs.is_bottom or rhs.is_bottom:
            return [], False
        return [CondAtom(e.op, lhs, rhs)], True
    if isinstance(e, IUn) and e.op == "!":
        inner, exact = cond_to_atoms(e.operand)
        if exact and len(inner) == 1:
            return [inner[0].negated()], True
        return [], False
    return [], False

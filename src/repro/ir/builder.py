"""AST → IR lowering.

Responsibilities:

* build symbol tables from declarations and parameters (block-scope
  declarations are hoisted to function scope — sufficient for the corpus,
  which never shadows);
* desugar compound assignment and ``++``/``--`` (statement position and
  embedded: pre-ops are emitted before the containing statement, post-ops
  after it, matching C semantics for the single-side-effect expressions
  the corpus uses);
* normalize inductive ``for`` loops into :class:`~repro.ir.nodes.SLoop`
  (``i = lb``; ``i </<=/>/>= bound``; ``i ± const`` step), falling back to
  ``SWhile`` otherwise;
* assign stable loop labels in program order: outer loops ``L1, L2...``,
  children ``L1.1`` etc.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.frontend import c_ast as A
from repro.frontend.parser import parse_function, parse_program
from repro.ir.nodes import (
    IArrayRef,
    IBin,
    ICall,
    IConst,
    IExpr,
    IFloat,
    IRFunction,
    IRProgram,
    IUn,
    IVar,
    SAssign,
    SBreak,
    SCall,
    SContinue,
    SIf,
    SLoop,
    SReturn,
    SWhile,
    Stmt,
)
from repro.ir.symtab import ElemType, SymbolTable, VarInfo

_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}
_ARITH_OPS = {"+", "-", "*", "/", "%"}
_LOGIC_OPS = {"&&", "||"}


def build_program(source_or_ast: "str | A.Program") -> IRProgram:
    """Lower a translation unit (source text or parsed AST) to IR."""
    ast = parse_program(source_or_ast) if isinstance(source_or_ast, str) else source_or_ast
    globals_tab = SymbolTable()
    for g in ast.globals:
        _declare(globals_tab, g, is_global=True)
    funcs: dict[str, IRFunction] = {}
    for f in ast.functions:
        funcs[f.name] = _build_function(f, globals_tab)
    return IRProgram(funcs, globals_tab)


def build_function(source_or_ast: "str | A.FuncDef", name: str | None = None) -> IRFunction:
    """Lower a single function to IR."""
    if isinstance(source_or_ast, str):
        ast = parse_function(source_or_ast, name)
    else:
        ast = source_or_ast
    return _build_function(ast, SymbolTable())


def _declare(tab: SymbolTable, decl: A.DeclStmt, is_global: bool = False) -> None:
    etype = ElemType.of_c_type(decl.type_name)
    for d in decl.declarators:
        tab.declare(VarInfo(d.name, etype, tuple(d.dims), is_param=False, is_global=is_global))


def _build_function(f: A.FuncDef, globals_tab: SymbolTable) -> IRFunction:
    tab = SymbolTable(parent=globals_tab)
    for p in f.params:
        tab.declare(VarInfo(p.name, ElemType.of_c_type(p.type_name), tuple(p.dims), is_param=True))
    builder = _Builder(tab)
    body = builder.stmt_list(f.body.stmts)
    _assign_labels(body)
    return IRFunction(f.name, body, tab)


def _assign_labels(body: list[Stmt]) -> None:
    def visit(stmts: list[Stmt], prefix: str, counter: list[int]) -> None:
        for s in stmts:
            if isinstance(s, (SLoop, SWhile)):
                counter[0] += 1
                label = f"{prefix}{counter[0]}"
                s.label = label
                inner = [0]
                for b in s.blocks():
                    visit(b, label + ".", inner)
            else:
                for b in s.blocks():
                    visit(b, prefix, counter)

    visit(body, "L", [0])


class _Builder:
    def __init__(self, tab: SymbolTable) -> None:
        self.tab = tab

    # -- statements ----------------------------------------------------------
    def stmt_list(self, stmts: tuple[A.Statement, ...] | list[A.Statement]) -> list[Stmt]:
        out: list[Stmt] = []
        for s in stmts:
            out.extend(self.statement(s))
        return out

    def statement(self, s: A.Statement) -> list[Stmt]:
        if isinstance(s, A.Block):
            return self.stmt_list(s.stmts)
        if isinstance(s, A.DeclStmt):
            _declare(self.tab, s)
            out: list[Stmt] = []
            for d in s.declarators:
                if d.init is not None:
                    out.extend(self._assign(A.Ident(d.name, d.loc), "=", d.init, d.loc))
            return out
        if isinstance(s, A.ExprStmt):
            return self.expr_statement(s.expr, s.loc)
        if isinstance(s, A.If):
            pre, cond = self.pure_expr(s.cond)
            if pre:
                raise IRError(f"{s.loc}: side effects in if-condition are unsupported")
            return [SIf(cond, self.statement(s.then), self.statement(s.other) if s.other else [], s.loc)]
        if isinstance(s, A.For):
            return self.for_statement(s)
        if isinstance(s, A.While):
            pre, cond = self.pure_expr(s.cond)
            if pre:
                raise IRError(f"{s.loc}: side effects in while-condition are unsupported")
            return [SWhile(cond, self.statement(s.body), "", s.loc)]
        if isinstance(s, A.Return):
            if s.value is None:
                return [SReturn(None, s.loc)]
            pre, v = self.pure_expr(s.value)
            return [*pre, SReturn(v, s.loc)]
        if isinstance(s, A.Break):
            return [SBreak(s.loc)]
        if isinstance(s, A.Continue):
            return [SContinue(s.loc)]
        if isinstance(s, A.Pragma):
            return []  # free-standing pragmas carry no IR semantics
        raise IRError(f"unsupported statement {type(s).__name__}")

    def expr_statement(self, e: A.Expression, loc) -> list[Stmt]:
        if isinstance(e, A.Assign):
            return self._assign(e.target, e.op, e.value, loc)
        if isinstance(e, A.UnaryOp) and e.op in ("++", "--"):
            one = A.IntLit(1, e.loc)
            return self._assign(e.operand, "+=" if e.op == "++" else "-=", one, loc)
        if isinstance(e, A.Call):
            pre, args = self._pure_args(e.args)
            return [*pre, SCall(ICall(e.name, tuple(args)), loc)]
        # an expression evaluated for side effects only
        pre, _ = self.pure_expr(e)
        return pre

    def _assign(self, target: A.Expression, op: str, value: A.Expression, loc) -> list[Stmt]:
        pre_t, post_t, tgt = self._lvalue(target)
        pre_v, val = self.pure_expr(value)
        if op != "=":
            val = IBin(op[0], tgt, val)
        return [*pre_t, *pre_v, SAssign(tgt, val, loc), *post_t]

    def _lvalue(self, e: A.Expression) -> tuple[list[Stmt], list[Stmt], IVar | IArrayRef]:
        """Lower an assignment target; returns (pre, post, target).
        Index expressions may carry ``++``/``--`` (``a[index++] = ...``)."""
        if isinstance(e, A.Ident):
            return [], [], IVar(e.name)
        if isinstance(e, A.ArrayRef):
            name = e.root_name()
            if name is None:
                raise IRError(f"{e.loc}: cannot lower array target {e}")
            pre: list[Stmt] = []
            post: list[Stmt] = []
            idx: list[IExpr] = []
            for index in e.indices():
                p, q, ix = self._index_expr(index)
                pre.extend(p)
                post.extend(q)
                idx.append(ix)
            return pre, post, IArrayRef(name, tuple(idx))
        raise IRError(f"unsupported assignment target {e}")

    def _index_expr(self, e: A.Expression) -> tuple[list[Stmt], list[Stmt], IExpr]:
        """Like pure_expr but separates post-increment side effects so
        they run *after* the containing statement (C semantics)."""
        if isinstance(e, A.UnaryOp) and e.op in ("++", "--") and isinstance(e.operand, A.Ident):
            v = IVar(e.operand.name)
            delta = IConst(1 if e.op == "++" else -1)
            update = SAssign(v, IBin("+", v, delta), e.loc)
            if e.postfix:
                return [], [update], v
            return [update], [], v
        pre, pure = self.pure_expr(e)
        return pre, [], pure

    # -- expressions ---------------------------------------------------------------
    def pure_expr(self, e: A.Expression) -> tuple[list[Stmt], IExpr]:
        """Lower an expression, extracting side effects as prefix statements."""
        if isinstance(e, A.IntLit):
            return [], IConst(e.value)
        if isinstance(e, A.FloatLit):
            return [], IFloat(e.value)
        if isinstance(e, A.Ident):
            return [], IVar(e.name)
        if isinstance(e, A.ArrayRef):
            name = e.root_name()
            if name is None:
                raise IRError(f"{e.loc}: cannot lower array ref {e}")
            pre: list[Stmt] = []
            idx: list[IExpr] = []
            for index in e.indices():
                p, q, ix = self._index_expr(index)
                pre.extend(p)
                if q:
                    # post-increment inside a *read* index: emit after read —
                    # since the read itself is pure, after-the-expression is
                    # equivalent to after-the-statement here.
                    pre_reads = q
                    pre.extend(pre_reads)
                idx.append(ix)
            return pre, IArrayRef(name, tuple(idx))
        if isinstance(e, A.UnaryOp):
            if e.op in ("++", "--"):
                p, q, v = self._index_expr(e)
                return [*p, *q], v
            pre, operand = self.pure_expr(e.operand)
            if e.op == "+":
                return pre, operand
            return pre, IUn(e.op, operand)
        if isinstance(e, A.BinOp):
            pre_l, left = self.pure_expr(e.left)
            pre_r, right = self.pure_expr(e.right)
            return [*pre_l, *pre_r], IBin(e.op, left, right)
        if isinstance(e, A.Cond):
            # ternary in rvalue position: lower via a fresh temp and SIf
            pre_c, cond = self.pure_expr(e.cond)
            pre_t, tval = self.pure_expr(e.then)
            pre_f, fval = self.pure_expr(e.other)
            tmp = IVar(self._fresh_temp())
            branch = SIf(cond, [*pre_t, SAssign(tmp, tval, e.loc)], [*pre_f, SAssign(tmp, fval, e.loc)], e.loc)
            return [*pre_c, branch], tmp
        if isinstance(e, A.Call):
            pre, args = self._pure_args(e.args)
            return pre, ICall(e.name, tuple(args))
        if isinstance(e, A.Assign):
            stmts = self._assign(e.target, e.op, e.value, e.loc)
            _, tgt = self.pure_expr(e.target)
            return stmts, tgt
        raise IRError(f"unsupported expression {type(e).__name__}")

    def _pure_args(self, args: tuple[A.Expression, ...]) -> tuple[list[Stmt], list[IExpr]]:
        pre: list[Stmt] = []
        out: list[IExpr] = []
        for a in args:
            p, v = self.pure_expr(a)
            pre.extend(p)
            out.append(v)
        return pre, out

    _temp_counter = 0

    def _fresh_temp(self) -> str:
        _Builder._temp_counter += 1
        name = f"__t{_Builder._temp_counter}"
        self.tab.declare(VarInfo(name, ElemType.INT))
        return name

    # -- loop normalization -----------------------------------------------------------
    def for_statement(self, s: A.For) -> list[Stmt]:
        body = self.statement(s.body)
        norm = self._normalize_for(s)
        if norm is not None:
            var, lb, ub, step, pre = norm
            return [*pre, SLoop(var, lb, ub, step, body, s.pragmas, "", s.loc)]
        # fallback: init; while (cond) { body; step; }
        out: list[Stmt] = []
        if s.init is not None:
            out.extend(self.statement(s.init))
        cond: IExpr = IConst(1)
        if s.cond is not None:
            pre, cond = self.pure_expr(s.cond)
            if pre:
                raise IRError(f"{s.loc}: side effects in for-condition are unsupported")
        step_stmts: list[Stmt] = []
        if s.step is not None:
            step_stmts = self.expr_statement(s.step, s.loc)
        out.append(SWhile(cond, [*body, *step_stmts], "", s.loc))
        return out

    def _normalize_for(
        self, s: A.For
    ) -> tuple[str, IExpr, IExpr, int, list[Stmt]] | None:
        """Match ``for (v = lb; v </<=/>/>= bound; v ± c)``; returns
        (var, lb, ub_exclusive, step, pre_statements) or None."""
        # --- induction variable and lower bound
        var: str | None = None
        lb_ast: A.Expression | None = None
        pre: list[Stmt] = []
        if isinstance(s.init, A.ExprStmt) and isinstance(s.init.expr, A.Assign) and s.init.expr.op == "=":
            tgt = s.init.expr.target
            if isinstance(tgt, A.Ident):
                var = tgt.name
                lb_ast = s.init.expr.value
        elif isinstance(s.init, A.DeclStmt) and len(s.init.declarators) == 1:
            d = s.init.declarators[0]
            if d.init is not None and not d.dims:
                _declare(self.tab, s.init)
                var = d.name
                lb_ast = d.init
        if var is None or lb_ast is None or s.cond is None or s.step is None:
            return None
        # --- step
        step = self._match_step(s.step, var)
        if step is None:
            return None
        # --- bound
        if not isinstance(s.cond, A.BinOp):
            return None
        op, left, right = s.cond.op, s.cond.left, s.cond.right
        if isinstance(right, A.Ident) and right.name == var and op in _CMP_OPS:
            # flip: bound OP var
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
            op, left, right = flip[op], right, left
        if not (isinstance(left, A.Ident) and left.name == var):
            return None
        if any(
            isinstance(n, A.Ident) and n.name == var for n in right.walk()
        ):
            return None  # bound must not reference the induction variable
        pre_b, bound = self.pure_expr(right)
        if pre_b:
            return None
        pre_l, lb = self.pure_expr(lb_ast)
        pre.extend(pre_l)
        if step > 0:
            if op == "<" or op == "!=":
                ub = bound
            elif op == "<=":
                ub = IBin("+", bound, IConst(1))
            else:
                return None
        else:
            if op == ">" or op == "!=":
                ub = bound
            elif op == ">=":
                ub = IBin("-", bound, IConst(1))
            else:
                return None
        return var, lb, ub, step, pre

    def _match_step(self, e: A.Expression, var: str) -> int | None:
        if isinstance(e, A.UnaryOp) and isinstance(e.operand, A.Ident) and e.operand.name == var:
            if e.op == "++":
                return 1
            if e.op == "--":
                return -1
        if isinstance(e, A.Assign) and isinstance(e.target, A.Ident) and e.target.name == var:
            if e.op in ("+=", "-=") and isinstance(e.value, A.IntLit):
                return e.value.value if e.op == "+=" else -e.value.value
            if e.op == "=" and isinstance(e.value, A.BinOp) and isinstance(e.value.right, A.IntLit):
                v = e.value
                if isinstance(v.left, A.Ident) and v.left.name == var:
                    if v.op == "+":
                        return v.right.value
                    if v.op == "-":
                        return -v.right.value
        return None

"""Symbol tables for the IR: scalar vs array, element type, dimensions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator


class ElemType(Enum):
    INT = "int"
    FLOAT = "float"

    @staticmethod
    def of_c_type(type_name: str) -> "ElemType":
        floaty = {"float", "double"}
        words = set(type_name.split())
        return ElemType.FLOAT if words & floaty else ElemType.INT


@dataclass(frozen=True, slots=True)
class VarInfo:
    name: str
    elem_type: ElemType
    dims: tuple[object, ...] = ()  # IExpr | None per dimension; () = scalar
    is_param: bool = False
    is_global: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass(slots=True)
class SymbolTable:
    """Flat per-function (or global) table.  The mini-C subset has no
    shadowing inside a function body (block-scoped decls are hoisted)."""

    vars: dict[str, VarInfo] = field(default_factory=dict)
    parent: "SymbolTable | None" = None

    def declare(self, info: VarInfo) -> None:
        self.vars[info.name] = info

    def lookup(self, name: str) -> VarInfo | None:
        if name in self.vars:
            return self.vars[name]
        if self.parent is not None:
            return self.parent.lookup(name)
        return None

    def is_array(self, name: str) -> bool:
        info = self.lookup(name)
        return info is not None and info.is_array

    def is_int_scalar(self, name: str) -> bool:
        info = self.lookup(name)
        return info is not None and not info.is_array and info.elem_type is ElemType.INT

    def arrays(self) -> Iterator[VarInfo]:
        seen: set[str] = set()
        tab: SymbolTable | None = self
        while tab is not None:
            for info in tab.vars.values():
                if info.is_array and info.name not in seen:
                    seen.add(info.name)
                    yield info
            tab = tab.parent

    def scalars(self) -> Iterator[VarInfo]:
        seen: set[str] = set()
        tab: SymbolTable | None = self
        while tab is not None:
            for info in tab.vars.values():
                if not info.is_array and info.name not in seen:
                    seen.add(info.name)
                    yield info
            tab = tab.parent

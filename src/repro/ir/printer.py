"""IR → C pretty-printer.

The parallelizer works on the IR, so the annotated program the pipeline
emits is printed from IR.  Because lowering desugared ``++``/``--`` into
explicit assignments, the output is plain (and still valid) C.
"""

from __future__ import annotations

from repro.ir.nodes import (
    IArrayRef,
    IBin,
    ICall,
    IConst,
    IExpr,
    IFloat,
    IRFunction,
    IUn,
    IVar,
    SAssign,
    SBreak,
    SCall,
    SContinue,
    SIf,
    SLoop,
    SReturn,
    SWhile,
    Stmt,
)
from repro.ir.symtab import ElemType

_INDENT = "    "

_PREC = {
    "||": 1, "&&": 2,
    "==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
    "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


def expr_to_c(e: IExpr, parent_prec: int = 0) -> str:
    if isinstance(e, (IConst, IFloat, IVar)):
        return str(e)
    if isinstance(e, IArrayRef):
        return e.array + "".join(f"[{expr_to_c(i)}]" for i in e.indices)
    if isinstance(e, IUn):
        return f"{e.op}{expr_to_c(e.operand, 11)}"
    if isinstance(e, IBin):
        prec = _PREC[e.op]
        text = f"{expr_to_c(e.left, prec)} {e.op} {expr_to_c(e.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, ICall):
        return f"{e.name}({', '.join(expr_to_c(a) for a in e.args)})"
    raise TypeError(f"unprintable IR expression {e!r}")


def stmt_to_c(s: Stmt, level: int = 0) -> str:
    pad = _INDENT * level
    if isinstance(s, SAssign):
        return f"{pad}{expr_to_c(s.target)} = {expr_to_c(s.value)};"
    if isinstance(s, SIf):
        text = f"{pad}if ({expr_to_c(s.cond)}) {{\n" + block_to_c(s.then, level + 1) + f"\n{pad}}}"
        if s.other:
            text += " else {\n" + block_to_c(s.other, level + 1) + f"\n{pad}}}"
        return text
    if isinstance(s, SLoop):
        lines = [f"{pad}#pragma {p}" for p in s.pragmas]
        cmp_op = "<" if s.step > 0 else ">"
        step_txt = (
            f"{s.var}++" if s.step == 1 else f"{s.var}--" if s.step == -1 else f"{s.var} += {s.step}"
        )
        lines.append(
            f"{pad}for ({s.var} = {expr_to_c(s.lb)}; {s.var} {cmp_op} {expr_to_c(s.ub)}; {step_txt}) {{"
        )
        lines.append(block_to_c(s.body, level + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(s, SWhile):
        return (
            f"{pad}while ({expr_to_c(s.cond)}) {{\n"
            + block_to_c(s.body, level + 1)
            + f"\n{pad}}}"
        )
    if isinstance(s, SCall):
        return f"{pad}{expr_to_c(s.call)};"
    if isinstance(s, SReturn):
        return f"{pad}return {expr_to_c(s.value)};" if s.value is not None else f"{pad}return;"
    if isinstance(s, SBreak):
        return f"{pad}break;"
    if isinstance(s, SContinue):
        return f"{pad}continue;"
    raise TypeError(f"unprintable IR statement {s!r}")


def block_to_c(stmts: list[Stmt], level: int = 0) -> str:
    if not stmts:
        return _INDENT * level + ";"
    return "\n".join(stmt_to_c(s, level) for s in stmts)


def function_to_c(func: IRFunction) -> str:
    """Emit a full C function definition from IR."""
    from repro.frontend.printer import expr_to_c as ast_expr_to_c

    params = []
    locals_: list[str] = []
    for info in func.symtab.vars.values():
        dims = "".join(
            f"[{ast_expr_to_c(d) if d is not None else ''}]" for d in info.dims  # type: ignore[arg-type]
        )
        c_type = "double" if info.elem_type is ElemType.FLOAT else "int"
        if info.is_param:
            params.append(f"{c_type} {info.name}{dims}")
        elif not info.is_global:
            locals_.append(f"{_INDENT}{c_type} {info.name}{dims};")
    header = f"void {func.name}({', '.join(params) or 'void'}) {{"
    body = block_to_c(func.body, 1)
    return "\n".join([header, *locals_, body, "}"])

"""Loop-oriented intermediate representation.

The IR desugars the mini-C AST into a small, analysis-friendly core:

* compound assignments and ``++``/``--`` become plain ``SAssign``;
* side effects are extracted out of expressions (``a[index++] = j``
  becomes ``a[index] = j; index = index + 1``), so IR *expressions* are
  pure;
* ``for`` loops matching the inductive pattern are normalized to
  :class:`SLoop` with explicit bounds and constant step; everything else
  falls back to :class:`SWhile` (executable, but opaque to the analysis,
  i.e. analyzed as ⊥ — exactly the paper's treatment of "too complex").

Loops receive stable labels ``L1``, ``L1.1`` ... in program order; the
reports, tests and benchmarks reference these labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.frontend.source import Loc


# --------------------------------------------------------------------------
# Expressions (pure)
# --------------------------------------------------------------------------


class IExpr:
    __slots__ = ()

    def children(self) -> Iterator["IExpr"]:
        return iter(())

    def walk(self) -> Iterator["IExpr"]:
        yield self
        for c in self.children():
            yield from c.walk()


@dataclass(frozen=True, slots=True)
class IConst(IExpr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class IFloat(IExpr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class IVar(IExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class IArrayRef(IExpr):
    """``array[indices...]`` — multi-dimensional refs keep one tuple."""

    array: str
    indices: tuple[IExpr, ...]

    def children(self) -> Iterator[IExpr]:
        yield from self.indices

    def __str__(self) -> str:
        return self.array + "".join(f"[{i}]" for i in self.indices)


@dataclass(frozen=True, slots=True)
class IBin(IExpr):
    """Binary operation; ``op`` ∈ arithmetic {+,-,*,/,%} ∪ comparison
    {<,<=,>,>=,==,!=} ∪ logical {&&,||}."""

    op: str
    left: IExpr
    right: IExpr

    def children(self) -> Iterator[IExpr]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class IUn(IExpr):
    """Unary operation; ``op`` ∈ {'-', '!'}."""

    op: str
    operand: IExpr

    def children(self) -> Iterator[IExpr]:
        yield self.operand

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True, slots=True)
class ICall(IExpr):
    """Opaque call (the analysis maps it to ⊥)."""

    name: str
    args: tuple[IExpr, ...]

    def children(self) -> Iterator[IExpr]:
        yield from self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Stmt:
    __slots__ = ()

    def blocks(self) -> Iterator[list["Stmt"]]:
        """Nested statement lists (for traversal)."""
        return iter(())

    def exprs(self) -> Iterator[IExpr]:
        """Immediate expressions of this statement."""
        return iter(())


@dataclass(slots=True)
class SAssign(Stmt):
    target: IVar | IArrayRef
    value: IExpr
    loc: Loc = field(default_factory=Loc.none)

    def exprs(self) -> Iterator[IExpr]:
        yield self.target
        yield self.value

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass(slots=True)
class SIf(Stmt):
    cond: IExpr
    then: list[Stmt]
    other: list[Stmt]
    loc: Loc = field(default_factory=Loc.none)

    def blocks(self) -> Iterator[list[Stmt]]:
        yield self.then
        yield self.other

    def exprs(self) -> Iterator[IExpr]:
        yield self.cond

    def __str__(self) -> str:
        return f"if ({self.cond}) ..."


@dataclass(slots=True)
class SLoop(Stmt):
    """Normalized counted loop.

    Semantics: ``var`` takes values ``lb, lb+step, ...`` while
    ``var < ub`` (step > 0) or ``var > ub`` (step < 0); ``ub`` is
    exclusive.  ``step`` is a non-zero integer constant.
    """

    var: str
    lb: IExpr
    ub: IExpr
    step: int
    body: list[Stmt]
    pragmas: tuple[str, ...] = ()
    label: str = ""
    loc: Loc = field(default_factory=Loc.none)

    def blocks(self) -> Iterator[list[Stmt]]:
        yield self.body

    def exprs(self) -> Iterator[IExpr]:
        yield self.lb
        yield self.ub

    def __str__(self) -> str:
        return f"{self.label or 'loop'}: for ({self.var} = {self.lb}; ...{self.ub}; step {self.step})"


@dataclass(slots=True)
class SWhile(Stmt):
    """Fallback loop form — executable, opaque to the analysis."""

    cond: IExpr
    body: list[Stmt]
    label: str = ""
    loc: Loc = field(default_factory=Loc.none)

    def blocks(self) -> Iterator[list[Stmt]]:
        yield self.body

    def exprs(self) -> Iterator[IExpr]:
        yield self.cond


@dataclass(slots=True)
class SCall(Stmt):
    call: ICall
    loc: Loc = field(default_factory=Loc.none)

    def exprs(self) -> Iterator[IExpr]:
        yield self.call


@dataclass(slots=True)
class SReturn(Stmt):
    value: IExpr | None = None
    loc: Loc = field(default_factory=Loc.none)

    def exprs(self) -> Iterator[IExpr]:
        if self.value is not None:
            yield self.value


@dataclass(slots=True)
class SBreak(Stmt):
    loc: Loc = field(default_factory=Loc.none)


@dataclass(slots=True)
class SContinue(Stmt):
    loc: Loc = field(default_factory=Loc.none)


# --------------------------------------------------------------------------
# Functions / program
# --------------------------------------------------------------------------


@dataclass(slots=True)
class IRFunction:
    name: str
    body: list[Stmt]
    symtab: "SymbolTable"

    def loops(self) -> list[SLoop]:
        """All normalized loops in pre-order."""
        out: list[SLoop] = []

        def visit(stmts: list[Stmt]) -> None:
            for s in stmts:
                if isinstance(s, SLoop):
                    out.append(s)
                for b in s.blocks():
                    visit(b)

        visit(self.body)
        return out

    def loop(self, label: str) -> SLoop:
        for lp in self.loops():
            if lp.label == label:
                return lp
        raise KeyError(f"no loop labeled {label!r} in {self.name}")

    def outer_loops(self) -> list[SLoop]:
        """Loops not nested inside another normalized loop."""
        out: list[SLoop] = []

        def visit(stmts: list[Stmt]) -> None:
            for s in stmts:
                if isinstance(s, SLoop):
                    out.append(s)
                    continue  # don't descend into its body
                for b in s.blocks():
                    visit(b)

        visit(self.body)
        return out


@dataclass(slots=True)
class IRProgram:
    functions: dict[str, IRFunction]
    globals: "SymbolTable"

    def function(self, name: str) -> IRFunction:
        return self.functions[name]


# placed at the end to avoid a circular import in type checking
from repro.ir.symtab import SymbolTable  # noqa: E402

__all__ = [
    "IArrayRef",
    "IBin",
    "ICall",
    "IConst",
    "IExpr",
    "IFloat",
    "IRFunction",
    "IRProgram",
    "IUn",
    "IVar",
    "SAssign",
    "SBreak",
    "SCall",
    "SContinue",
    "SIf",
    "SLoop",
    "SReturn",
    "SWhile",
    "Stmt",
]

"""Loop IR: nodes, builder (AST lowering), symbol tables, printers, and the
IR → symbolic bridge."""

from repro.ir.builder import build_function, build_program
from repro.ir.nodes import (
    IArrayRef,
    IBin,
    ICall,
    IConst,
    IExpr,
    IFloat,
    IRFunction,
    IRProgram,
    IUn,
    IVar,
    SAssign,
    SBreak,
    SCall,
    SContinue,
    SIf,
    SLoop,
    SReturn,
    SWhile,
    Stmt,
)
from repro.ir.printer import block_to_c, expr_to_c, function_to_c, stmt_to_c
from repro.ir.symtab import ElemType, SymbolTable, VarInfo
from repro.ir.symx import CondAtom, cond_to_atoms, ir_to_sym

__all__ = [
    "CondAtom",
    "ElemType",
    "IArrayRef",
    "IBin",
    "ICall",
    "IConst",
    "IExpr",
    "IFloat",
    "IRFunction",
    "IRProgram",
    "IUn",
    "IVar",
    "SAssign",
    "SBreak",
    "SCall",
    "SContinue",
    "SIf",
    "SLoop",
    "SReturn",
    "SWhile",
    "Stmt",
    "SymbolTable",
    "VarInfo",
    "block_to_c",
    "build_function",
    "build_program",
    "cond_to_atoms",
    "expr_to_c",
    "function_to_c",
    "ir_to_sym",
    "stmt_to_c",
]

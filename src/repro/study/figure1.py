"""Figure 1 reproduction: the empirical study table.

For every NPB / SuiteSparse program in the registry, run the scanner and
the full pipeline on its representative kernels and report

* whether the program contains parallelizable subscripted-subscript
  loops (the paper's aggregate: NPB 6/10, SuiteSparse 4/8);
* the property classes involved;
* whether our extended Range Test parallelizes the target loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus import SUITE_PROGRAMS, SuiteProgram, all_kernels
from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.study.scanner import scan_function
from repro.utils.tables import Table


@dataclass
class ProgramRow:
    suite: str
    program: str
    has_patterns: bool
    patterns: str
    parallelized: str  # "n/m" kernels parallelized
    provenance: str

    def cells(self) -> tuple:
        return (
            self.suite,
            self.program,
            "yes" if self.has_patterns else "no",
            self.patterns or "-",
            self.parallelized or "-",
            self.provenance,
        )


@dataclass
class Figure1Result:
    rows: list[ProgramRow] = field(default_factory=list)

    def counts(self) -> dict[str, tuple[int, int]]:
        out: dict[str, tuple[int, int]] = {}
        for suite in ("NPB", "SuiteSparse"):
            rows = [r for r in self.rows if r.suite == suite]
            out[suite] = (sum(r.has_patterns for r in rows), len(rows))
        return out

    def render(self) -> str:
        t = Table(
            ["suite", "program", "s-s patterns", "property classes", "parallelized", "provenance"],
            title="Figure 1 — subscripted-subscript patterns in NPB v3.3.1 and SuiteSparse v5.4.0",
        )
        for r in self.rows:
            t.add_row(*r.cells())
        counts = self.counts()
        summary = "; ".join(
            f"{suite}: {have}/{total} programs with patterns"
            for suite, (have, total) in counts.items()
        )
        return t.render() + "\n" + summary


def run_figure1(method: str = "extended") -> Figure1Result:
    """Regenerate Figure 1's table from the corpus."""
    kernels = all_kernels()
    result = Figure1Result()
    for prog in SUITE_PROGRAMS:
        patterns: list[str] = []
        par_ok = 0
        total = 0
        for kname in prog.kernels:
            k = kernels[kname]
            out = parallelize(k.source, method=method, assertions=k.assertion_env())
            total += 1
            if k.target_loop in out.parallel_loops:
                par_ok += 1
            patterns.append(k.pattern)
            # sanity: the scanner must see the pattern the kernel embodies
            func = build_function(k.source)
            scan = scan_function(func)
            if k.expect_parallel and not scan.sites:
                raise AssertionError(f"scanner found no pattern sites in {kname}")
        provenance = (
            "paper text"
            if prog.from_paper_text
            else ("reconstructed" if prog.reconstructed else "none found")
        )
        result.rows.append(
            ProgramRow(
                suite=prog.suite,
                program=prog.program,
                has_patterns=prog.has_patterns,
                patterns=", ".join(sorted(set(patterns))),
                parallelized=f"{par_ok}/{total}" if total else "",
                provenance=provenance if prog.has_patterns else "-",
            )
        )
    return result

"""Subscripted-subscript pattern scanner (the Section-2 study, automated).

Finds, per loop, the array writes whose subscript expressions contain the
value of another array (directly, through copied scalars, or through an
inner-loop bound), and classifies the *shape*:

* ``indirect-point``  — ``A[B[i]] = ...``          (P1/P3 candidates)
* ``indirect-span``   — ``A[B[k]]``, k from inner loop (P4a)
* ``span-bound``      — ``A[k]``, bounds contain an array (P2a/P2c/P6)
* ``point-expr``      — point subscript containing an array term (P4b/P5)

The classifier then asks which property would make the loop parallel and
whether the pipeline (with the corpus assertions / derived facts) indeed
parallelizes it — regenerating Figure 1's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dependence.accesses import Access, collect_accesses
from repro.ir.nodes import IRFunction, SLoop
from repro.symbolic.expr import ArrayTerm


@dataclass(frozen=True)
class PatternSite:
    loop_label: str
    array: str
    shape: str  # indirect-point | indirect-span | span-bound | point-expr | unknown
    subscript_arrays: tuple[str, ...]

    def describe(self) -> str:
        via = ", ".join(self.subscript_arrays) or "?"
        return f"{self.loop_label}: {self.array}[...{via}...] ({self.shape})"


@dataclass
class ScanReport:
    function: str
    sites: list[PatternSite] = field(default_factory=list)

    @property
    def loops_with_patterns(self) -> list[str]:
        return sorted({s.loop_label for s in self.sites})

    def describe(self) -> str:
        lines = [f"subscripted-subscript sites in {self.function}:"]
        lines += ["  " + s.describe() for s in self.sites]
        return "\n".join(lines)


def _arrays_in(e) -> tuple[str, ...]:  # noqa: ANN001
    if e is None:
        return ()
    return tuple(sorted({at.array for at in e.atoms() if isinstance(at, ArrayTerm)}))


def _classify_access(a: Access) -> tuple[str, tuple[str, ...]] | None:
    """Classify the first subscripted-subscript dimension of an access
    (any dimension indexing through another array qualifies the site)."""
    if a.index is None:
        return None
    for d in a.index.dims:
        if d.indirect is not None:
            via = (d.indirect.via,)
            if d.indirect.arg_span is not None:
                return "indirect-span", via
            return "indirect-point", via
        if d.point is not None:
            arrays = _arrays_in(d.point)
            if arrays:
                shape = "indirect-point" if isinstance(d.point, ArrayTerm) else "point-expr"
                return shape, arrays
            continue
        if d.span is not None:
            arrays = tuple(
                sorted(set(_arrays_in(d.span.lo)) | set(_arrays_in(d.span.hi)))
            )
            if arrays:
                return "span-bound", arrays
    return None


def scan_function(func: IRFunction) -> ScanReport:
    """Scan every loop of ``func`` for subscripted-subscript writes."""
    report = ScanReport(function=func.name)
    seen: set[tuple[str, str, str]] = set()
    for loop in func.loops():
        accs = collect_accesses(func, loop)
        for a in accs.accesses:
            if not a.is_write:
                continue
            cls = _classify_access(a)
            if cls is None:
                continue
            shape, arrays = cls
            key = (loop.label, a.array, shape)
            if key in seen:
                continue
            seen.add(key)
            report.sites.append(PatternSite(loop.label, a.array, shape, arrays))
    return report

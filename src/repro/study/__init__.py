"""The Section-2 empirical study, automated: pattern scanner and the
Figure 1 table generator."""

from repro.study.figure1 import Figure1Result, ProgramRow, run_figure1
from repro.study.scanner import PatternSite, ScanReport, scan_function

__all__ = [
    "Figure1Result",
    "PatternSite",
    "ProgramRow",
    "ScanReport",
    "run_figure1",
    "scan_function",
]

"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (offline PEP 517 editable builds need bdist_wheel; the
legacy develop path does not)."""

from setuptools import setup

setup()

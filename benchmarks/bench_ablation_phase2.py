"""TAB-ABL2 — Phase 2 rule ablation on the Figure 9 class.

Quantifies what each aggregation rule buys by disabling it:

* no recurrence rule   → rowptr gets no monotonicity → product loop serial;
* no value-range substitution (rowsize's [0:CL] unavailable when reading
  it in the rowptr loop) → the increment sign is unknown → serial.

This is the design-choice evidence DESIGN.md calls out: the recurrence
rule *and* flow of value ranges between loops are both load-bearing.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_function
from repro.analysis.phase2 import Phase2Aggregator
from repro.dependence import test_loop
from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.utils.tables import Table


def _verdict_full(source, target):
    out = parallelize(source)
    return target in out.parallel_loops


def _verdict_no_recurrence(source, target, monkeypatch_cls):
    disabled = monkeypatch_cls

    def no_rec(self, arr, upd, section, offset=None):
        return None

    original = Phase2Aggregator._try_recurrence
    Phase2Aggregator._try_recurrence = no_rec  # type: ignore[assignment]
    try:
        out = parallelize(source)
        return target in out.parallel_loops
    finally:
        Phase2Aggregator._try_recurrence = original  # type: ignore[assignment]


def test_ablation_phase2_rules(benchmark, kernels):
    k = kernels["fig9_csr_product"]

    def run():
        full = _verdict_full(k.source, k.target_loop)
        no_rec = _verdict_no_recurrence(k.source, k.target_loop, None)
        return full, no_rec

    full, no_rec = benchmark(run)
    t = Table(["configuration", "product loop verdict"], title="Phase 2 rule ablation (Figure 9)")
    t.add_row("full analysis", "PARALLEL" if full else "serial")
    t.add_row("recurrence rule disabled", "PARALLEL" if no_rec else "serial")
    print()
    print(t.render())
    assert full and not no_rec

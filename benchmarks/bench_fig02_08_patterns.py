"""FIG2–FIG8 — per-figure pattern analysis (paper Figures 2 through 8).

For each figure kernel: benchmark the full pipeline (parse → analyze →
dependence-test → plan) and print the verdict row the paper's prose
states (pattern class, property, parallel or not), plus the dynamic
oracle confirmation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.runtime import check_loop_independence
from repro.utils.tables import Table

FIGS = [
    "fig2_ua_injective",
    "fig3_cg_monotonic",
    "fig4_cg_monodiff",
    "fig5_csparse_subset",
    "fig6_csparse_simul",
    "fig7_ua_simul_inj",
    "fig8_ua_disjoint",
]


@pytest.mark.parametrize("name", FIGS)
def test_figure_pattern(benchmark, kernels, name):
    k = kernels[name]

    def pipeline():
        return parallelize(k.source, assertions=k.assertion_env())

    out = benchmark(pipeline)
    parallel = k.target_loop in out.parallel_loops
    oracle = "-"
    if k.make_inputs is not None:
        func = build_function(k.source)
        report = check_loop_independence(func, k.make_inputs(0), k.target_loop)
        oracle = "independent" if report.independent else "CONFLICTS"
    t = Table(["figure", "pattern", "property", "compiler", "oracle"], title="")
    t.add_row(
        k.figure,
        k.pattern,
        k.property_needed,
        "PARALLEL" if parallel else "serial",
        oracle,
    )
    print()
    print(t.render())
    assert parallel == k.expect_parallel
    if k.make_inputs is not None and parallel:
        assert oracle == "independent"

"""FIG10 — CG speedups, Classes A/B/C × {2,4,6,8} threads (paper Fig 10).

Two series:

* **modeled** — the Kaby Lake R roofline/SMT/overhead model, printing
  the same rows the paper plots and asserting the curve shapes (Class A
  peaks at 6 threads with 8 only slightly above 4; B and C peak at 8;
  ~3.8× around 4 threads);
* **measured (parallel engine)** — the Figure-9 CG product loop run on
  the compiler's own parallel execution engine (workers ∈ {2, 4})
  against the compiled serial engine, skipped honestly on single-CPU
  hosts where a >1× speedup is physically unavailable;
* **measured (hand-coded SpMV)** — real multiprocessing SpMV over
  shared memory on the reproduction host (documented substitution for
  the C/OpenMP testbed), on a size-scaled Class A matrix.

Plus the headline: baselines parallelize nothing (sequential), the
extended test parallelizes all CG kernels — and, new in PR 2, those
PARALLEL verdicts are dynamically validated against the independence
oracle on the *compiled* runtime engine by default (set
``REPRO_ENGINE=interp`` to fall back to the reference interpreter).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.evaluation import (
    measure_figure10,
    render_measured,
    run_figure10,
    shape_checks,
)
from repro.evaluation.figure10 import CG_KERNELS
from repro.runtime import default_engine, measure_spmv_speedup
from repro.service import BatchEngine, corpus_requests, validate_parallel_verdicts
from repro.utils.tables import Table
from repro.workloads.sparse import random_csr


def test_fig10_modeled_speedups(benchmark):
    result = benchmark(run_figure10)
    print()
    print(result.render())
    problems = shape_checks(result)
    assert problems == [], problems


def test_fig10_cg_verdicts_oracle_validated(benchmark):
    """The CG kernels' parallel verdicts hold up dynamically: the batch
    service's oracle spot-check (compiled engine unless REPRO_ENGINE
    says otherwise) finds no conflicting declared-parallel loop."""
    engine = BatchEngine()
    report = engine.run(
        r for r in corpus_requests() if r.name in CG_KERNELS
    )
    problems = benchmark(validate_parallel_verdicts, report)
    print()
    print(f"oracle engine: {default_engine()}; kernels: {', '.join(CG_KERNELS)}")
    assert problems == {}, problems
    assert any(v.parallel_loops for v in report.verdicts)  # something was actually checked


@pytest.mark.measured
def test_fig10_measured_parallel_engine(benchmark):
    """Measured series on the compiler's own execution path: the CG
    product loop, planned + scheduled + executed by the parallel
    engine, vs the compiled serial engine at 2 and 4 workers."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            f"host has {cpus} cpu(s); a measured parallel speedup > 1x "
            "needs at least 2 — the modeled series covers the curve shape"
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("multiprocessing strategy needs the fork start method")

    def measure():
        return measure_figure10(workers=(2, 4), nrows=8000, repeats=3)

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_measured(points))
    # genuine scaling through the engine, not just the hand-coded SpMV
    assert max(p.speedup for p in points) > 1.2


@pytest.mark.measured
def test_fig10_measured_spmv(benchmark):
    """Measured series (substitute testbed): Class-A-sized random CSR
    (na=14000, ~132 nnz/row like nonzer=11).  The claim checked is
    genuine parallel scaling of the loop the compiler transformed, not
    the paper's absolute numbers."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            f"host has {cpus} cpu(s); a measured SpMV speedup > 1.2x "
            "needs at least 2"
        )
    A = random_csr(14000, 132, seed=1)

    def measure():
        return measure_spmv_speedup(
            A, thread_counts=(2, 4, 6, 8), repeats=3, inner=40, label="A-sized"
        )

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    t = Table(["threads", "sweep ms", "speedup"], title="measured SpMV (A-sized, host machine)")
    for p in series.points:
        t.add_row(p.threads, f"{p.time_s * 1e3:.2f}", f"{p.speedup:.2f}")
    print(t.render())
    # genuine parallel scaling: at least one configuration beats serial
    assert max(p.speedup for p in series.points) > 1.2

"""TAB-INSPECT — the real runtime inspector vs its alternatives.

The paper's Related Work argues runtime schemes' "Achilles' heel is the
significant overhead of the inserted inspection code".  Before PR 10
this harness used the dynamic oracle as a stand-in for such an
inspector; now the hybrid tier has a *real* one
(:mod:`repro.runtime.inspector`): vectorized NumPy predicates over the
actual index-array values, content-addressed by the index arrays'
byte fingerprints.  The honest head-to-head is therefore three-way:

* **compile-time (this paper)** — one static analysis per program,
  zero per-input cost, but leaves ``unknown`` verdicts serial;
* **runtime inspector (hybrid tier)** — a *cold* inspection lowers the
  access algebra and evaluates the predicates once per sparsity
  structure; every later call with the same structure is one content
  hash (a *fingerprint-warm* memo hit);
* **full oracle trace** — what a naive inspector/executor pays: trace
  every access of every input before parallel execution.

The gates are relative (host-independent) and mirror
``repro bench --check``: warm < 0.1x cold, and warm < 0.01x the full
oracle trace.
"""

from __future__ import annotations

import time

import pytest

from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.runtime import check_loop_independence
from repro.runtime.bench import measure_inspector_overhead
from repro.utils.tables import Table


def _require_vectorized_inspector():
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover — numpy is a hard dep of repro
        pytest.skip(
            "the runtime inspector's predicates are vectorized NumPy "
            "reductions; no NumPy on this host means no inspection"
        )


def test_inspector_cold_warm_oracle(benchmark):
    """Cold inspection, fingerprint-warm inspection, and the full oracle
    trace on the Figure-9-style CSR kernel (rowptr as an *input*, so the
    static verdict is genuinely unknown and the inspector decides)."""
    _require_vectorized_inspector()
    d = measure_inspector_overhead(size=20000)
    assert d is not None
    assert d["parallel"], "the monotone CSR rowptr must pass inspection"
    assert d["warm_cached"], "repeat inspections must hit the memo"

    # benchmark the steady state the service actually runs in: the
    # content hash + memo hit
    from repro.runtime import inspector
    from repro.runtime.parallel import _function_fingerprint
    from repro.runtime.bench import _CSR_INPUT_SRC, _csr_input_env

    func = build_function(_CSR_INPUT_SRC)
    loop = next(lp for lp in func.loops() if lp.label == "L1")
    plan = inspector.lower_inspector(func, loop)
    env = _csr_input_env(20000)
    fp = _function_fingerprint(func)
    res = benchmark(lambda: inspector.inspect(plan, env, fp, 0, 20000))
    assert res.parallel and res.cached

    t = Table(
        ["path", "cost", "paid"],
        title="Runtime inspection, amortized (Figure-9 CSR, unknown verdict)",
    )
    t.add_row("inspector, cold", f"{d['cold'] / 1e3:.2f} ms", "once per sparsity structure")
    t.add_row(
        "inspector, fingerprint-warm",
        f"{d['warm'] / 1e3:.3f} ms ({d['amortization']:.0f}x amortized)",
        "every later call",
    )
    t.add_row("full oracle trace", f"{d['oracle_trace'] / 1e3:.1f} ms", "every input")
    print()
    print(t.render())

    # the `repro bench --check` gates, asserted here so CI sees them
    # even without regenerating BENCH_runtime.json
    assert d["warm"] < 0.1 * d["cold"], d
    assert d["warm"] < 0.01 * d["oracle_trace"], d


def test_inspector_vs_compile_time(kernels):
    """Where the static stack *can* decide (the corpus Figure 9 kernel),
    compile-time analysis still wins outright: one analysis per program
    vs a per-structure inspection — the paper's original argument,
    preserved with the real inspector in the comparison."""
    _require_vectorized_inspector()
    k = kernels["fig9_csr_product"]
    func = build_function(k.source)

    t0 = time.perf_counter()
    out = parallelize(k.source)
    compile_cost = time.perf_counter() - t0
    assert k.target_loop in out.parallel_loops

    t0 = time.perf_counter()
    rep = check_loop_independence(
        func, k.make_inputs(0), k.target_loop, engine="compiled"
    )
    trace_cost = time.perf_counter() - t0
    assert rep.independent

    t = Table(
        ["approach", "per-input overhead", "amortization"],
        title="Compile-time analysis vs runtime schemes (Figure 9 kernel)",
    )
    t.add_row(
        "compile-time (this paper)",
        "0 (one-off %.1f ms)" % (compile_cost * 1e3),
        "once per program",
    )
    t.add_row(
        "full oracle trace",
        f"{trace_cost * 1e3:.1f} ms",
        "every input",
    )
    print()
    print(t.render())

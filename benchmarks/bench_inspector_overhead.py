"""TAB-INSPECT — compile-time analysis vs inspector/executor overhead.

The paper's Related Work argues runtime schemes' "Achilles' heel is the
significant overhead of the inserted inspection code".  This harness
quantifies that on Figure 9: an inspector/executor scheme must trace the
loop's accesses (our dynamic oracle is exactly such an inspector) on
*every input* before executing in parallel, while the compile-time
verdict costs one analysis at build time and nothing at run time.
"""

from __future__ import annotations

import time

from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.runtime import ENGINES, check_loop_independence, execute
from repro.utils.tables import Table


def test_inspector_vs_compile_time(benchmark, kernels):
    k = kernels["fig9_csr_product"]
    func = build_function(k.source)

    # compile-time: one-off analysis cost
    t0 = time.perf_counter()
    out = parallelize(k.source)
    compile_cost = time.perf_counter() - t0
    assert k.target_loop in out.parallel_loops

    # runtime inspector: per-input tracing cost vs plain execution,
    # measured on both engines (the compiled backend narrows but cannot
    # remove the gap — inspection is inherently per input)
    def inspect_once(engine="compiled"):
        env = k.make_inputs(0)
        return check_loop_independence(func, env, k.target_loop, engine=engine)

    report = benchmark(inspect_once)
    assert report.independent

    t = Table(
        ["approach", "per-input overhead", "amortization"],
        title="Compile-time analysis vs inspector/executor (Figure 9 kernel)",
    )
    t.add_row(
        "compile-time (this paper)",
        "0 (one-off %.1f ms)" % (compile_cost * 1e3),
        "once per program",
    )
    for engine in ENGINES:
        t0 = time.perf_counter()
        execute(func, k.make_inputs(0), engine=engine)
        plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        rep = inspect_once(engine)
        inspected = time.perf_counter() - t0
        assert rep.independent
        t.add_row(
            f"inspector/executor ({engine})",
            f"{max(inspected - plain, 0.0) * 1e3:.1f} ms (+{(inspected / plain - 1) * 100 if plain > 0 else 0:.0f}%)",
            "every input",
        )
    print()
    print(t.render())

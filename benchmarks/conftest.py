"""Benchmark fixtures (pytest-benchmark).

Every harness both *benchmarks* its pipeline stage and *prints* the
table/series the corresponding paper artifact reports, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the paper's evaluation outputs.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "measured: needs multiprocessing (slower)")


@pytest.fixture(scope="session")
def kernels():
    from repro.corpus import all_kernels

    return all_kernels()

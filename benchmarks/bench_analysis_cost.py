"""TAB-COST — compile-time cost of the analysis per corpus kernel.

The paper argues compile-time analysis beats inspector/executor schemes
because it has *zero runtime overhead*; the flip side is compile-time
cost, quantified here: wall-clock per kernel for the full pipeline
(parse → IR → two-phase analysis → dependence tests → planning).
"""

from __future__ import annotations

import time

import pytest

from repro.parallelizer import parallelize
from repro.utils.tables import Table

KERNEL_NAMES = [
    "fig2_ua_injective",
    "fig3_cg_monotonic",
    "fig4_cg_monodiff",
    "fig5_csparse_subset",
    "fig6_csparse_simul",
    "fig7_ua_simul_inj",
    "fig8_ua_disjoint",
    "fig9_csr_product",
]


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_analysis_cost(benchmark, kernels, name):
    k = kernels[name]

    def pipeline():
        return parallelize(k.source, assertions=k.assertion_env())

    out = benchmark(pipeline)
    assert (k.target_loop in out.parallel_loops) == k.expect_parallel


def test_analysis_cost_summary(benchmark, kernels):
    def sweep():
        rows = []
        for name in KERNEL_NAMES:
            k = kernels[name]
            t0 = time.perf_counter()
            parallelize(k.source, assertions=k.assertion_env())
            rows.append((name, (time.perf_counter() - t0) * 1e3))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = Table(["kernel", "pipeline ms"], title="Compile-time cost (single run)")
    for name, ms in rows:
        t.add_row(name, f"{ms:.1f}")
    print()
    print(t.render())

"""TAB-COST — compile-time cost of the analysis per corpus kernel.

The paper argues compile-time analysis beats inspector/executor schemes
because it has *zero runtime overhead*; the flip side is compile-time
cost, quantified here: wall-clock per kernel for the full pipeline
(parse → IR → two-phase analysis → dependence tests → planning), driven
through the batch service (:mod:`repro.service`).

Per-kernel timings use a fresh cache *and* cleared memo tables so they
measure *cold* analysis — since the hash-consed symbolic core, a fresh
``ResultCache`` alone is not cold: the expression memos, the prover
memos, and the incremental nest cache all survive across engines in one
process.  The summary sweep runs one cold batch and prints the engine's
own timing table.

The committed snapshot lives in ``BENCH_analysis.json``; regenerate it
with ``PYTHONPATH=src python -m repro bench --analysis --json
BENCH_analysis.json`` (see :mod:`repro.analysis.bench`).
"""

from __future__ import annotations

import pytest

from repro.service import AnalysisRequest, BatchEngine, ResultCache
from repro.symbolic.expr import clear_memo_tables
from repro.utils.tables import Table

KERNEL_NAMES = [
    "fig2_ua_injective",
    "fig3_cg_monotonic",
    "fig4_cg_monodiff",
    "fig5_csparse_subset",
    "fig6_csparse_simul",
    "fig7_ua_simul_inj",
    "fig8_ua_disjoint",
    "fig9_csr_product",
]


def _request(kernels, name: str) -> AnalysisRequest:
    return AnalysisRequest(name=name, source=kernels[name].source, kernel=name)


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_analysis_cost(benchmark, kernels, name):
    k = kernels[name]
    req = _request(kernels, name)

    def pipeline():
        # fresh cache + cleared memos: measure the cold pipeline, not a
        # cache or memo lookup
        clear_memo_tables()
        return BatchEngine(cache=ResultCache()).analyze(req)

    verdict = benchmark(pipeline)
    assert verdict.ok
    assert (k.target_loop in verdict.parallel_loops) == k.expect_parallel


def test_analysis_cost_summary(benchmark, kernels):
    requests = [_request(kernels, name) for name in KERNEL_NAMES]

    def sweep():
        clear_memo_tables()
        return BatchEngine(cache=ResultCache()).run(requests)

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = Table(["kernel", "pipeline ms"], title="Compile-time cost (single cold batch)")
    for v in report.verdicts:
        t.add_row(v.name, f"{v.seconds * 1e3:.1f}")
    print()
    print(t.render())

"""CI gate: old-vs-new analysis engine verdict equivalence.

Runs every corpus kernel and N fuzz seeds through both analysis engines
(``legacy`` — the frozen pre-framework walker — and ``passes`` — the
pass framework) and diffs the per-loop verdicts:

* a **regression** (legacy PARALLEL, passes serial) fails the gate;
* an **improvement** (passes PARALLEL, legacy serial) is allowed — the
  framework's derivation rules exist to add power — but every corpus
  improvement must be declared in ``EXPECTED_CORPUS_IMPROVEMENTS`` so
  new ones are a conscious decision, and improvements are soundness-
  checked against the dynamic oracle before they count.

The full diff is written as a JSON artifact (``--json``) so CI uploads
it alongside the pass/fail signal.

Usage::

    PYTHONPATH=src python benchmarks/analysis_equivalence.py \
        --fuzz-seeds 200 --json verdict_diff.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.corpus import all_kernels
from repro.ir import build_function
from repro.parallelizer import parallelize
from repro.parallelizer.planner import covered_by_parallel_ancestor
from repro.runtime import check_loop_independence
from repro.workloads.generators import random_kernel

#: corpus improvements the pass framework is expected to deliver
#: (kernel name, loop label) — keep in sync with
#: tests/test_pass_framework.py::EXPECTED_IMPROVEMENTS
EXPECTED_CORPUS_IMPROVEMENTS = {
    ("inv_perm_scatter", "L2"),
    ("guarded_prefix_fill", "L2"),
    # 2-D index-vector kernels: leading-dimension separation through
    # pass-only derived properties (permutation-scatter,
    # permutation-compose, guarded-counter)
    ("perm_row_scatter", "L2"),
    ("csr_gather_accum", "L2"),
    ("blocked_counter_fill", "L2"),
}

ORACLE_SEEDS = (0, 1)


def _verdicts(source: str, assertions, engine: str) -> dict[str, bool]:
    out = parallelize(source, assertions=assertions, engine=engine)
    return {label: p.parallel for label, p in out.plan.loops.items()}


def _oracle_independent(source: str, make_inputs, label: str) -> bool:
    if make_inputs is None:
        return True  # nothing to execute; static soundness covered by tests
    func = build_function(source)
    for seed in ORACLE_SEEDS:
        report = check_loop_independence(func, make_inputs(seed), label)
        if not report.independent:
            return False
    return True


def run_gate(fuzz_seeds: int) -> dict:
    regressions: list[dict] = []
    improvements: list[dict] = []
    unexpected: list[dict] = []
    unsound: list[dict] = []
    checked = 0

    def compare(name: str, source: str, assertions, make_inputs, corpus: bool) -> None:
        nonlocal checked
        old = _verdicts(source, assertions, "legacy")
        new = _verdicts(source, assertions, "passes")
        checked += len(new)
        for label in sorted(set(old) | set(new)):
            o, n = old.get(label, False), new.get(label, False)
            if o == n:
                continue
            if label not in new and covered_by_parallel_ancestor(label, new):
                continue  # subsumed by a parallel outer loop on passes
            if label not in old and covered_by_parallel_ancestor(label, old):
                continue
            entry = {"kernel": name, "loop": label, "legacy": o, "passes": n}
            if o and not n:
                regressions.append(entry)
                continue
            improvements.append(entry)
            if corpus and (name, label) not in EXPECTED_CORPUS_IMPROVEMENTS:
                unexpected.append(entry)
            if not _oracle_independent(source, make_inputs, label):
                unsound.append(entry)

    for name, k in sorted(all_kernels().items()):
        compare(name, k.source, k.assertion_env(), k.make_inputs, corpus=True)
    for seed in range(fuzz_seeds):
        rk = random_kernel(seed)
        compare(rk.name, rk.source, None, rk.make_inputs, corpus=False)

    return {
        "loops_checked": checked,
        "regressions": regressions,
        "improvements": improvements,
        "unexpected_corpus_improvements": unexpected,
        "unsound_improvements": unsound,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fuzz-seeds", type=int, default=200)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the verdict diff to PATH ('-' for stdout)")
    args = parser.parse_args(argv)

    diff = run_gate(args.fuzz_seeds)
    text = json.dumps(diff, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    elif args.json:
        Path(args.json).write_text(text + "\n")

    print(
        f"analysis equivalence: {diff['loops_checked']} loops compared, "
        f"{len(diff['improvements'])} improvements, "
        f"{len(diff['regressions'])} regressions"
    )
    status = 0
    for entry in diff["regressions"]:
        print(f"REGRESSION: {entry['kernel']}/{entry['loop']} lost its PARALLEL verdict")
        status = 1
    for entry in diff["unexpected_corpus_improvements"]:
        print(
            f"UNDECLARED IMPROVEMENT: {entry['kernel']}/{entry['loop']} — add to "
            "EXPECTED_CORPUS_IMPROVEMENTS if intended"
        )
        status = 1
    for entry in diff["unsound_improvements"]:
        print(
            f"UNSOUND IMPROVEMENT: {entry['kernel']}/{entry['loop']} conflicts "
            "under the dynamic oracle"
        )
        status = 1
    if status == 0:
        print("gate passed: no regressions, all improvements declared and oracle-clean")
    return status


if __name__ == "__main__":
    sys.exit(main())

"""TAB-BATCH — throughput of the batch analysis service.

Quantifies the two levers the service adds over the one-kernel library
pipeline:

* **caching** — a warm batch over the full built-in corpus must beat the
  sequential cold batch by a wide margin (cache hits skip parse,
  analysis, dependence testing and planning entirely), and this holds
  with any ``jobs`` setting because a fully warm batch never spawns a
  worker pool;
* **parallel workers** — on a corpus large enough to amortize pool
  startup (synthesized by the differential-fuzz kernel generator),
  ``jobs=4`` must not lose to sequential cold analysis, and its scaling
  is printed for inspection.

Reports must stay byte-identical across all configurations — that
invariant is asserted here too (and tested exhaustively in
``tests/test_service_cache.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service import AnalysisRequest, BatchEngine, ResultCache, corpus_requests
from repro.utils.tables import Table
from repro.workloads.generators import random_kernel


def _timed(engine: BatchEngine, requests) -> tuple[float, "object"]:
    t0 = time.perf_counter()
    report = engine.run(requests)
    return time.perf_counter() - t0, report


def test_warm_cache_beats_sequential_cold(benchmark, tmp_path):
    """Acceptance: full corpus, ``jobs=4`` + warm cache vs sequential cold."""
    from repro.symbolic import expr as symexpr

    requests = corpus_requests()
    symexpr.clear_memo_tables()  # honest cold run: no symbolic memo carry-over
    cold_seconds, cold = _timed(BatchEngine(jobs=1, cache=ResultCache()), requests)
    memo = symexpr.memo_stats()

    warm_engine = BatchEngine(jobs=4, cache=ResultCache(cache_dir=tmp_path))
    warm_engine.run(requests)  # populate

    warm_seconds, warm = _timed(warm_engine, requests)
    benchmark.pedantic(warm_engine.run, args=(requests,), rounds=3, iterations=1)

    t = Table(["configuration", "ms"], title="Batch service: full built-in corpus")
    t.add_row("sequential cold (jobs=1, empty cache)", f"{cold_seconds * 1e3:.1f}")
    t.add_row("warm cache (jobs=4)", f"{warm_seconds * 1e3:.1f}")
    print()
    print(t.render())
    print(
        f"symbolic memo during cold run: {memo['hits']} hits / "
        f"{memo['misses']} misses ({memo['entries']} entries)"
    )

    assert warm.canonical_json() == cold.canonical_json()
    assert all(v.from_cache for v in warm.verdicts)
    assert warm_seconds < cold_seconds / 2, (
        f"warm batch ({warm_seconds * 1e3:.1f} ms) not measurably faster than "
        f"sequential cold ({cold_seconds * 1e3:.1f} ms)"
    )


@pytest.mark.measured
def test_parallel_workers_scale_on_large_corpus(benchmark):
    """Cold analysis of a fuzz-generated corpus: jobs=4 vs jobs=1."""
    requests = [
        AnalysisRequest(name=f"fuzz{s}", source=random_kernel(s).source)
        for s in range(80)
    ]
    seq_seconds, seq = _timed(BatchEngine(jobs=1, cache=ResultCache()), requests)
    par_seconds, par = _timed(BatchEngine(jobs=4, cache=ResultCache()), requests)
    benchmark.pedantic(
        lambda: BatchEngine(jobs=4, cache=ResultCache()).run(requests),
        rounds=1,
        iterations=1,
    )

    t = Table(["configuration", "ms", "speedup"], title="Batch service: 80 fuzz kernels, cold")
    t.add_row("jobs=1", f"{seq_seconds * 1e3:.1f}", "1.00x")
    t.add_row("jobs=4", f"{par_seconds * 1e3:.1f}", f"{seq_seconds / par_seconds:.2f}x")
    print()
    print(t.render())

    assert par.canonical_json() == seq.canonical_json()
    # pool startup must be amortized at this corpus size: parallel cold
    # analysis may not *lose* to sequential cold analysis.  On a
    # single-CPU host no speedup is physically possible, so skip the
    # timing assertion explicitly (after the byte-identity check above,
    # which holds everywhere) instead of flaking.
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if not cpus or cpus < 2:
        pytest.skip(
            f"single-CPU host ({cpus} usable core): parallel speedup is not "
            f"physically possible; observed ratio {seq_seconds / par_seconds:.2f}x"
        )
    assert par_seconds < seq_seconds * 1.10, (
        f"jobs=4 ({par_seconds * 1e3:.1f} ms) slower than jobs=1 "
        f"({seq_seconds * 1e3:.1f} ms) on {cpus} CPUs"
    )

"""FIG9 / Section 3.5 — the analysis trace and the derived pragma.

Benchmarks the two-phase analysis on the paper's Figure 9 program and
prints the Section 3.5 trace (Phase 1 / Phase 2 lines per loop) plus the
annotated C — the exact artifacts the paper shows.

Known divergence (documented in EXPERIMENTS.md): the paper prints
``count : [Λ : Λ+COLUMNLEN−1]``; the sharp bound after COLUMNLEN
iterations of ``λ+[0:1]`` is ``Λ+COLUMNLEN``, which is what we print.
"""

from __future__ import annotations

from repro.analysis import analyze_function, render_trace
from repro.ir import build_function
from repro.parallelizer import parallelize


def test_fig09_section35_trace(benchmark, kernels):
    k = kernels["fig9_csr_product"]
    func = build_function(k.source)
    result = benchmark(analyze_function, func)
    trace = render_trace(result, ["count", "column_number", "value", "rowsize", "rowptr"])
    print()
    print(trace)
    assert "Phase 1 (L1.1): count : [λ(count) : λ(count) + 1]" in trace
    assert "rowptr : [0 : ROWLEN], Monotonic_inc" in trace


def test_fig09_annotated_output(benchmark, kernels):
    k = kernels["fig9_csr_product"]
    out = benchmark(parallelize, k.source)
    print()
    print(out.annotated_c)
    assert "#pragma omp parallel for private(j,j1)" in out.annotated_c

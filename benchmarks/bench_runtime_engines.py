"""RUNTIME — compiled closure engine vs tree-walking interpreter.

The oracle/fuzz path (dynamic independence inspection) is the repo's
dominant dynamic cost; this harness pins the compiled backend's speedup
over the reference interpreter on the three representative kernel shapes
of :mod:`repro.runtime.bench` plus the differential-fuzz sweep, and
asserts the engines agree on every verdict.

The committed snapshot lives at ``BENCH_runtime.json`` (repo root);
regenerate it with::

    PYTHONPATH=src python -m repro bench --json BENCH_runtime.json

Acceptance floor (PR 2): geomean compiled-vs-interp oracle speedup ≥ 5x.
"""

from __future__ import annotations

from repro.ir import build_function
from repro.runtime.bench import (
    BENCH_KERNELS,
    check_regression,
    render,
    run_runtime_bench,
)
from repro.runtime.executor import measure_oracle_throughput

#: smaller than the CLI default so the benchmark suite stays quick; the
#: committed BENCH_runtime.json uses the CLI default size
BENCH_SIZE = 8000


def test_runtime_engines_speedup(benchmark):
    doc = run_runtime_bench(size=BENCH_SIZE, repeats=2, fuzz_seeds=10)
    print()
    print(render(doc))
    # the pytest-benchmark series tracks the compiled oracle on the
    # heaviest kernel shape
    src, label, env_builder = BENCH_KERNELS["csr_segment_walk"]
    func = build_function(src)
    benchmark.pedantic(
        lambda: measure_oracle_throughput(
            func, lambda: env_builder(BENCH_SIZE), label, engine="compiled", repeats=1
        ),
        rounds=1,
        iterations=1,
    )
    # correctness: identical verdicts everywhere
    assert check_regression(doc, min_speedup=1.0) == []
    # acceptance: ≥5x on the oracle path (geomean across kernel shapes)
    assert doc["summary"]["oracle_geomean_speedup"] >= 5.0, doc["summary"]


def test_fuzz_sweep_faster_and_agreeing(benchmark):
    doc = benchmark.pedantic(
        lambda: run_runtime_bench(size=2000, repeats=1, fuzz_seeds=10, kernels=["scatter_filled"]),
        rounds=1,
        iterations=1,
    )
    fs = doc["fuzz_sweep"]
    assert fs["verdicts_agree"]
    # generous: compiled must simply not be slower on the fuzz path
    assert fs["speedup"] > 1.0, fs

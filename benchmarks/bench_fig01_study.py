"""FIG1 — the empirical study table (paper Figure 1).

Regenerates: per-program pattern presence, property classes, and whether
the pipeline parallelizes the representative kernels; prints the table
and asserts the paper's aggregates (NPB 6/10, SuiteSparse 4/8).
"""

from __future__ import annotations

from repro.study import run_figure1


def test_fig01_study_table(benchmark):
    result = benchmark(run_figure1)
    print()
    print(result.render())
    assert result.counts()["NPB"] == (6, 10)
    assert result.counts()["SuiteSparse"] == (4, 8)
    for row in result.rows:
        if row.has_patterns:
            done, total = row.parallelized.split("/")
            assert done == total

"""TAB-ABL1 — dependence-method ablation over the whole corpus.

The paper's motivating claim: Cetus / Rose / ICC / PGI (affine tests and
the classic Range Test) cannot parallelize any subscripted-subscript
loop; the extended Range Test gets them all.  This table quantifies that
on the corpus: target loops parallelized per method.
"""

from __future__ import annotations

from repro.analysis import analyze_function
from repro.dependence import METHODS, compare_methods
from repro.ir import build_function
from repro.utils.tables import Table


def run_ablation(kernels):
    rows = []
    totals = {m: 0 for m in METHODS}
    for name, k in sorted(kernels.items()):
        func = build_function(k.source)
        res = analyze_function(func, k.assertion_env())
        loop = func.loop(k.target_loop)
        cmp = compare_methods(func, loop, res.env_at(k.target_loop))
        for m, v in cmp.verdicts.items():
            totals[m] += int(v)
        rows.append((name, k.pattern, cmp.verdicts))
    return rows, totals


def test_ablation_dependence_methods(benchmark, kernels):
    rows, totals = benchmark(run_ablation, kernels)
    t = Table(
        ["kernel", "pattern", *METHODS],
        title="Dependence-method ablation (target loops parallelized)",
    )
    for name, pattern, verdicts in rows:
        t.add_row(name, pattern, *["P" if verdicts[m] else "-" for m in METHODS])
    t.add_row("TOTAL", "", *[str(totals[m]) for m in METHODS])
    print()
    print(t.render())
    expected_parallel = sum(1 for k in kernels.values() if k.expect_parallel)
    assert totals["extended"] == expected_parallel
    # the paper's survey: no baseline handles any subscripted subscript;
    # affine baselines may only pick up the affine strict-mono kernel
    assert totals["gcd"] <= 1 and totals["banerjee"] <= 1 and totals["range"] <= 1

"""PARALLEL-ENGINE smoke — the third runtime engine earns its keep.

Two layers, both *relative* (absolute times are meaningless on shared
CI runners):

* **correctness at speed** — every benchmark kernel executes on the
  parallel engine bit-identically to the interpreter, whatever the
  host's CPU count (the ordered reduction replay makes worker count
  unobservable), and the engine stays within a generous overhead
  envelope of the compiled serial engine when no real parallelism is
  available;
* **measured speedup** — on multi-core hosts only, the CG product loop
  must actually beat the compiled serial engine at 2+ workers.  On a
  single-CPU host that claim is physically unavailable, so the test
  skips with the reason printed rather than asserting a number the
  hardware cannot produce.

The persistent-fabric claim (PR 9) is also relative and therefore runs
on *every* host with fork: a warm dispatch — pool already spawned,
arena segments recycled, schedule cache hit — must cost less than half
a cold one.  Unlike the speedup assert, this does not need a second
CPU, only that reuse beats re-setup.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.evaluation import measure_figure10, render_measured
from repro.ir import build_function
from repro.runtime import compile_parallel, execute, run_function
from repro.runtime.bench import BENCH_KERNELS

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1


def _copy(env: dict) -> dict:
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


@pytest.mark.parametrize("name", sorted(BENCH_KERNELS))
def test_parallel_engine_matches_interp_on_bench_kernels(name):
    src, _label, env_builder = BENCH_KERNELS[name]
    func = build_function(src)
    base = env_builder(2000)
    ref = _copy(base)
    run_function(func, ref)
    env = _copy(base)
    execute(func, env, engine="parallel")
    for key, want in ref.items():
        got = env[key]
        if isinstance(want, np.ndarray):
            assert np.array_equal(got, want), key
        else:
            assert got == want, key


def test_parallel_overhead_envelope():
    """Scheduling + chunking overhead stays bounded: the parallel engine
    on 1 worker must land within 3x of the compiled serial engine on
    the embarrassingly-parallel branch kernel (in practice it is ~1x;
    3x only trips on a pathological regression, not runner noise)."""
    src, _label, env_builder = BENCH_KERNELS["par_branch_private"]
    func = build_function(src)
    pf = compile_parallel(func)

    def best(run) -> float:
        t = float("inf")
        for _ in range(3):
            env = _copy(env_builder(20000))
            t0 = time.perf_counter()
            run(env)
            t = min(t, time.perf_counter() - t0)
        return t

    t_compiled = best(lambda env: execute(func, env, engine="compiled"))
    t_parallel = best(lambda env: pf.run(env, workers=1))
    assert t_parallel < 3.0 * t_compiled, (t_parallel, t_compiled)


def test_warm_dispatch_beats_cold_on_every_host():
    """The fabric's whole point: after the first call, ``execute()``
    pays neither fork nor shared-memory allocation nor schedule
    lowering, so a warm dispatch must land under 0.5x the cold one.
    This is a relative claim — it holds on 1-CPU runners too."""
    if not HAVE_FORK:
        pytest.skip("fabric dispatch needs the fork start method")
    from repro.runtime.bench import measure_dispatch_overhead

    d = measure_dispatch_overhead()
    assert d is not None
    print()
    print(
        f"dispatch overhead: cold {d['cold']:.0f} us -> warm {d['warm']:.0f} us "
        f"(ratio {d['warm_over_cold']:.2f}, pool spawns {d['pool_spawns']})"
    )
    assert d["pool_spawns"] == 1, d  # ten warm calls reused one pool
    assert d["warm"] < 0.5 * d["cold"], d


def test_measured_cg_speedup_on_multicore():
    """The Figure-10 claim, measured for real: at 2 or 4 workers the
    parallel engine beats compiled-serial on the CG product loop."""
    if CPUS < 2:
        pytest.skip(
            f"host has {CPUS} cpu(s); a parallel speedup > 1x needs at "
            "least 2 — correctness is still pinned by the equivalence tests"
        )
    if not HAVE_FORK:
        pytest.skip("multiprocessing strategy needs the fork start method")
    points = measure_figure10(workers=(2, 4), nrows=8000, repeats=3)
    print()
    print(render_measured(points))
    assert max(p.speedup for p in points) > 1.1, [
        (p.workers, p.speedup) for p in points
    ]
